"""Unit tests for the presence-gated network."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import AlwaysOnline, DropReason, Network


class ScriptedPresence:
    """Presence oracle driven by explicit (node -> [(start, end)]) windows."""

    def __init__(self, windows):
        self.windows = windows

    def is_online(self, node, time):
        return any(start <= time < end for start, end in self.windows.get(node, []))


@pytest.fixture
def net(sim):
    return Network(sim, latency=ConstantLatency(0.05))


class TestAttachment:
    def test_attach_and_deliver(self, sim, net):
        inbox = []
        net.attach("a", lambda env: None)
        net.attach("b", inbox.append)
        net.send("a", "b", "hello")
        sim.run()
        assert len(inbox) == 1
        assert inbox[0].payload == "hello"
        assert inbox[0].src == "a"

    def test_double_attach_rejected(self, net):
        net.attach("a", lambda env: None)
        with pytest.raises(ValueError):
            net.attach("a", lambda env: None)

    def test_detach_drops_future_messages(self, sim, net):
        inbox = []
        net.attach("a", lambda env: None)
        net.attach("b", inbox.append)
        net.detach("b")
        net.send("a", "b", "x")
        sim.run()
        assert inbox == []
        assert net.stats.dropped[DropReason.NO_HANDLER] == 1

    def test_node_count(self, net):
        net.attach("a", lambda env: None)
        net.attach("b", lambda env: None)
        assert net.node_count == 2


class TestLatency:
    def test_delivery_takes_latency(self, sim, net):
        times = []
        net.attach("a", lambda env: None)
        net.attach("b", lambda env: times.append(sim.now))
        net.send("a", "b", "x")
        sim.run()
        assert times == [0.05]

    def test_envelope_timestamps(self, sim, net):
        envs = []
        net.attach("a", lambda env: None)
        net.attach("b", envs.append)
        sim.run_until(10.0)
        net.send("a", "b", "x")
        sim.run()
        assert envs[0].sent_at == 10.0
        assert envs[0].delivered_at == pytest.approx(10.05)


class TestPresenceGating:
    def test_offline_destination_drops(self, sim):
        presence = ScriptedPresence({"a": [(0, 100)], "b": []})
        net = Network(sim, latency=ConstantLatency(0.05), presence=presence)
        inbox = []
        net.attach("a", lambda env: None)
        net.attach("b", inbox.append)
        assert net.send("a", "b", "x")  # put on the wire fine
        sim.run()
        assert inbox == []
        assert net.stats.dropped[DropReason.DST_OFFLINE] == 1

    def test_offline_sender_cannot_send(self, sim):
        presence = ScriptedPresence({"a": [], "b": [(0, 100)]})
        net = Network(sim, latency=ConstantLatency(0.05), presence=presence)
        net.attach("a", lambda env: None)
        net.attach("b", lambda env: None)
        assert not net.send("a", "b", "x")
        assert net.stats.dropped[DropReason.SRC_OFFLINE] == 1
        assert net.stats.sent == 0

    def test_sender_check_can_be_disabled(self, sim):
        presence = ScriptedPresence({"a": [], "b": [(0, 100)]})
        net = Network(
            sim, latency=ConstantLatency(0.05), presence=presence, check_sender=False
        )
        inbox = []
        net.attach("a", lambda env: None)
        net.attach("b", inbox.append)
        assert net.send("a", "b", "x")
        sim.run()
        assert len(inbox) == 1

    def test_destination_going_offline_mid_flight(self, sim):
        presence = ScriptedPresence({"a": [(0, 100)], "b": [(0.0, 0.02)]})
        net = Network(sim, latency=ConstantLatency(0.05), presence=presence)
        inbox = []
        net.attach("a", lambda env: None)
        net.attach("b", inbox.append)
        net.send("a", "b", "x")  # delivery at 0.05, b offline from 0.02
        sim.run()
        assert inbox == []
        assert net.stats.dropped[DropReason.DST_OFFLINE] == 1

    def test_is_online_helper(self, sim):
        presence = ScriptedPresence({"a": [(0, 5)]})
        net = Network(sim, presence=presence)
        assert net.is_online("a")
        sim.run_until(6.0)
        assert not net.is_online("a")


class TestStats:
    def test_counts_accumulate(self, sim, net):
        net.attach("a", lambda env: None)
        net.attach("b", lambda env: None)
        for _ in range(5):
            net.send("a", "b", "x")
        sim.run()
        assert net.stats.sent == 5
        assert net.stats.delivered == 5
        assert net.stats.dropped_total == 0

    def test_snapshot_is_plain_dict(self, sim, net):
        net.attach("a", lambda env: None)
        net.send("a", "missing", "x")
        sim.run()
        snap = net.stats.snapshot()
        assert snap["sent"] == 1
        assert snap["delivered"] == 0
        assert snap["dropped"][DropReason.NO_HANDLER] == 1

    def test_always_online_default(self, sim):
        net = Network(sim)
        assert isinstance(net.presence, AlwaysOnline)
        assert net.is_online("anyone")
