"""Unit tests for membership lists and the AVMEM node protocols."""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.membership import MembershipLists, SliverSelector
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, SliverKind, paper_predicate
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView
from repro.monitor.oracle import OracleAvailability
from repro.sim.engine import Simulator
from repro.sim.network import Network


class TestMembershipLists:
    @pytest.fixture
    def lists(self):
        ids = make_node_ids(10)
        return MembershipLists(ids[0]), ids

    def test_upsert_and_lookup(self, lists):
        table, ids = lists
        entry = table.upsert(ids[1], 0.5, SliverKind.HORIZONTAL, now=10.0)
        assert ids[1] in table
        assert table.get(ids[1]) is entry
        assert table.horizontal_count == 1
        assert table.vertical_count == 0

    def test_upsert_moves_between_slivers(self, lists):
        table, ids = lists
        table.upsert(ids[1], 0.5, SliverKind.HORIZONTAL, now=0.0)
        table.upsert(ids[1], 0.9, SliverKind.VERTICAL, now=5.0)
        assert table.horizontal_count == 0
        assert table.vertical_count == 1
        entry = table.get(ids[1])
        assert entry.availability == 0.9
        assert entry.added_at == 0.0  # original insertion preserved
        assert entry.checked_at == 5.0

    def test_self_neighbor_rejected(self, lists):
        table, ids = lists
        with pytest.raises(ValueError):
            table.upsert(ids[0], 0.5, SliverKind.HORIZONTAL, now=0.0)

    def test_remove(self, lists):
        table, ids = lists
        table.upsert(ids[1], 0.5, SliverKind.VERTICAL, now=0.0)
        assert table.remove(ids[1])
        assert not table.remove(ids[1])
        assert table.total_count == 0

    def test_selector_filters(self, lists):
        table, ids = lists
        table.upsert(ids[1], 0.5, SliverKind.HORIZONTAL, now=0.0)
        table.upsert(ids[2], 0.9, SliverKind.VERTICAL, now=0.0)
        assert table.neighbor_ids(SliverSelector.HS_ONLY) == [ids[1]]
        assert table.neighbor_ids(SliverSelector.VS_ONLY) == [ids[2]]
        assert set(table.neighbor_ids(SliverSelector.BOTH)) == {ids[1], ids[2]}

    def test_invalid_selector_rejected(self, lists):
        table, _ = lists
        with pytest.raises(ValueError):
            table.entries("everything")

    def test_clear(self, lists):
        table, ids = lists
        table.upsert(ids[1], 0.5, SliverKind.HORIZONTAL, now=0.0)
        table.clear()
        assert table.total_count == 0


@pytest.fixture
def wired_system(rng):
    """A small fully-wired system: 80 nodes, static presence split."""
    ids = make_node_ids(80)
    # First 60 always online; last 20 never online.
    schedules = {
        node: NodeSchedule([(0.0, 1e6)] if i < 60 else [])
        for i, node in enumerate(ids)
    }
    trace = ChurnTrace(schedules, horizon=1e6)
    sim = Simulator()
    network = Network(sim, presence=trace, rng=rng)
    oracle = OracleAvailability(trace, sim)
    avs = list(np.linspace(0.05, 0.95, 80))
    pdf = AvailabilityPdf.from_samples(avs, n_star=60.0)
    predicate = paper_predicate(pdf)
    coarse = GlobalSampleView(sim, ids, view_size=25, rng=rng, presence=trace)
    config = AvmemConfig()
    nodes = {}
    for node_id in ids:
        cache = CachedAvailabilityView(oracle, sim)
        nodes[node_id] = AvmemNode(
            node_id, sim, network, predicate, config, cache, coarse, rng=rng
        )
    return sim, trace, network, nodes, ids, predicate


class TestDiscovery:
    def test_discovery_adds_predicate_matches_only(self, wired_system):
        sim, trace, network, nodes, ids, predicate = wired_system
        sim.run_until(3600.0)  # availabilities well-defined
        node = nodes[ids[0]]
        node.discovery_step()
        me = node.self_descriptor()
        for entry in node.lists.all_entries():
            candidate = NodeDescriptor(entry.node, entry.availability)
            assert predicate.evaluate(me, candidate)

    def test_discovery_skips_offline_candidates(self, wired_system):
        sim, trace, network, nodes, ids, _ = wired_system
        sim.run_until(3600.0)
        node = nodes[ids[0]]
        for _ in range(30):
            node.discovery_step()
            sim.run_until(sim.now + 60.0)
        offline = set(ids[60:])
        assert not (set(node.lists.neighbor_ids()) & offline)

    def test_offline_node_skips_discovery(self, wired_system):
        sim, _, _, nodes, ids, _ = wired_system
        offline_node = nodes[ids[70]]
        assert offline_node.discovery_step() == 0
        assert offline_node.discovery_rounds == 0

    def test_discovery_accumulates_over_rounds(self, wired_system):
        sim, _, _, nodes, ids, _ = wired_system
        sim.run_until(3600.0)
        node = nodes[ids[30]]
        node.discovery_step()
        first = node.lists.total_count
        for _ in range(20):
            sim.run_until(sim.now + 60.0)
            node.discovery_step()
        assert node.lists.total_count >= first


class TestRefresh:
    def test_refresh_updates_cached_availability(self, wired_system):
        sim, _, _, nodes, ids, _ = wired_system
        sim.run_until(3600.0)
        node = nodes[ids[0]]
        node.discovery_step()
        entries_before = {e.node: e.checked_at for e in node.lists.all_entries()}
        sim.run_until(sim.now + 1200.0)
        node.refresh_step()
        for entry in node.lists.all_entries():
            if entry.node in entries_before:
                assert entry.checked_at > entries_before[entry.node]

    def test_refresh_prunes_offline_neighbors(self, rng):
        ids = make_node_ids(30)
        # Node 1..20 online only until t=5000.
        schedules = {ids[0]: NodeSchedule([(0.0, 1e6)])}
        for node in ids[1:21]:
            schedules[node] = NodeSchedule([(0.0, 5000.0)])
        for node in ids[21:]:
            schedules[node] = NodeSchedule([(0.0, 1e6)])
        trace = ChurnTrace(schedules, horizon=1e6)
        sim = Simulator()
        network = Network(sim, presence=trace, rng=rng)
        oracle = OracleAvailability(trace, sim)
        pdf = AvailabilityPdf.uniform(n_star=30.0)
        predicate = paper_predicate(pdf)
        coarse = GlobalSampleView(sim, ids, 29, rng=rng, presence=trace, stale_fraction=0.0)
        node = AvmemNode(
            ids[0], sim, network, predicate, AvmemConfig(),
            CachedAvailabilityView(oracle, sim), coarse, rng=rng,
        )
        sim.run_until(2000.0)
        node.discovery_step()
        had_doomed = any(e.node in set(ids[1:21]) for e in node.lists.all_entries())
        sim.run_until(6000.0)  # ids[1:21] now offline
        node.refresh_step()
        doomed = set(ids[1:21])
        assert had_doomed
        assert not (set(node.lists.neighbor_ids()) & doomed)

    def test_refresh_skipped_while_offline(self, wired_system):
        _, _, _, nodes, ids, _ = wired_system
        assert nodes[ids[75]].refresh_step() == 0


class TestBootstrapAndLifecycle:
    def test_bootstrap_matches_discovery_semantics(self, wired_system):
        sim, _, _, nodes, ids, predicate = wired_system
        sim.run_until(3600.0)
        node = nodes[ids[5]]
        candidates = [
            NodeDescriptor(other, node.availability._service.query(other))
            for other in ids
            if other != ids[5]
        ]
        added = node.bootstrap_from(candidates)
        assert added == node.lists.total_count
        me = node.self_descriptor()
        for candidate in candidates:
            expected = predicate.evaluate_kind(me, candidate)
            if expected is None:
                assert candidate.node not in node.lists
            else:
                assert node.lists.get(candidate.node).kind is expected

    def test_start_twice_rejected(self, wired_system):
        _, _, _, nodes, ids, _ = wired_system
        node = nodes[ids[0]]
        node.start()
        with pytest.raises(RuntimeError):
            node.start()
        node.stop()

    def test_periodic_protocols_run(self, wired_system):
        sim, _, _, nodes, ids, _ = wired_system
        node = nodes[ids[0]]
        node.start(stagger=False)
        sim.run_until(3700.0)
        assert node.discovery_rounds >= 60
        assert node.refresh_rounds >= 3
        node.stop()
        rounds = node.discovery_rounds
        sim.run_until(7200.0)
        assert node.discovery_rounds == rounds


class TestMessaging:
    def test_handler_dispatch_by_type(self, wired_system):
        sim, _, _, nodes, ids, _ = wired_system
        received = []
        nodes[ids[1]].register_handler(str, lambda node, env: received.append(env.payload))
        nodes[ids[0]].send(ids[1], "hello")
        sim.run()
        assert received == ["hello"]

    def test_unregistered_payload_ignored(self, wired_system):
        sim, _, _, nodes, ids, _ = wired_system
        nodes[ids[0]].send(ids[1], 3.14)  # no float handler anywhere
        sim.run()  # must not raise

    def test_duplicate_handler_rejected(self, wired_system):
        _, _, _, nodes, ids, _ = wired_system
        nodes[ids[2]].register_handler(str, lambda node, env: None)
        with pytest.raises(ValueError):
            nodes[ids[2]].register_handler(str, lambda node, env: None)

    def test_send_from_offline_node_fails(self, wired_system):
        _, _, _, nodes, ids, _ = wired_system
        assert not nodes[ids[70]].send(ids[0], "x")
