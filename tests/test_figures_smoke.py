"""Smoke tests: every figure driver runs at small scale and produces a
well-formed result with the expected series/rows.

These are the regression net for the reproduction harness itself; the
full-scale numbers live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments.figures import ALL_FIGURES


@pytest.fixture(scope="module")
def results():
    """Run every figure once at small scale (shared across assertions)."""
    return {fig_id: run(scale="small", seed=5) for fig_id, run in ALL_FIGURES.items()}


class TestAllFigures:
    def test_registry_complete(self):
        assert sorted(ALL_FIGURES, key=lambda f: int(f[3:])) == [
            f"fig{i}" for i in range(2, 14)
        ]

    def test_all_render(self, results):
        for fig_id, result in results.items():
            text = result.render()
            assert fig_id in text
            assert result.rows, f"{fig_id} produced no rows"

    def test_ids_match(self, results):
        for fig_id, result in results.items():
            assert result.figure_id == fig_id


class TestSnapshotFigures:
    def test_fig2_bands_cover_unit_interval(self, results):
        rows = results["fig2"].row_dicts()
        assert len(rows) == 10
        total_online = sum(r["online_nodes"] for r in rows)
        assert total_online > 20

    def test_fig3_sublinear_slope(self, results):
        note = " ".join(results["fig3"].notes)
        slope = float(note.split("count: ")[1].split(" ")[0])
        assert slope < 1.0  # the paper's sublinearity claim

    def test_fig4_incoming_series_present(self, results):
        series = results["fig4"].series["incoming_vs"]
        assert len(series) > 20
        assert all(v >= 0 for v in series)


class TestAttackFigures:
    def test_fig5_acceptance_bounded(self, results):
        rows = results["fig5"].row_dicts()
        cushion0 = [r["accept_rate"] for r in rows if r["cushion"] == 0.0]
        assert cushion0
        assert max(cushion0) < 0.5

    def test_fig6_cushion_helps(self, results):
        rows = results["fig6"].row_dicts()
        mean0 = np.mean([r["reject_rate"] for r in rows if r["cushion"] == 0.0])
        mean1 = np.mean([r["reject_rate"] for r in rows if r["cushion"] == 0.1])
        assert mean1 <= mean0 + 0.05


class TestAnycastFigures:
    def test_fig7_variants_present(self, results):
        rows = results["fig7"].row_dicts()
        assert {r["variant"] for r in rows} == {
            "VS-only", "HS+VS", "HS-only", "sim-annealing",
        }

    def test_fig7_fractions_valid(self, results):
        for row in results["fig7"].row_dicts():
            assert row["delivered"] <= row["of"]

    def test_fig8_has_nine_plus_rows(self, results):
        rows = results["fig8"].row_dicts()
        assert len(rows) == 12  # 3 targets x 4 variants
        for row in rows:
            fraction = row["delivered_fraction"]
            assert np.isnan(fraction) or 0.0 <= fraction <= 1.0

    def test_fig9_retry_sweep(self, results):
        rows = results["fig9"].row_dicts()
        assert [r["retry"] for r in rows] == [2, 4, 8, 16, 2, 4, 8, 16]
        assert {r["lists"] for r in rows} == {"maintained", "stale (paper-like)"}
        for row in rows:
            total = row["delivered"] + row["ttl_expired"] + row["retry_expired"] + row["other_failed"]
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig10_is_random_overlay_variant(self, results):
        assert "random overlay" in results["fig10"].title


class TestMulticastFigures:
    SCENARIOS = {
        "HIGH to [0.85,0.95]",
        "HIGH to >0.90",
        "LOW to >0.20",
        "Gossip, HIGH to >0.90",
        "Gossip, LOW to >0.20",
    }

    def test_fig11_scenarios(self, results):
        rows = results["fig11"].row_dicts()
        assert {r["scenario"] for r in rows} == self.SCENARIOS

    def test_fig11_latencies_positive(self, results):
        for label, series in results["fig11"].series.items():
            assert all(v >= 0 for v in series), label

    def test_fig12_ratios_non_negative(self, results):
        for series in results["fig12"].series.values():
            assert all(v >= 0 for v in series)

    def test_fig13_reliability_in_unit_interval(self, results):
        for series in results["fig13"].series.values():
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_gossip_slower_than_flood(self, results):
        rows = {r["scenario"]: r for r in results["fig11"].row_dicts()}
        flood = rows["HIGH to >0.90"]["p50_ms"]
        gossip = rows["Gossip, HIGH to >0.90"]["p50_ms"]
        if flood == flood and gossip == gossip:  # both non-NaN
            assert gossip > flood
