"""avmemlint test suite: fixtures per rule family, suppression and
baseline round-trips, the repo self-check, and the CLI gates.

The fixture trees under tests/data/avmemlint/ use deliberately small
LintConfigs (``engine/`` as the engine scope, ``svc/`` as the service
scope) so every rule is exercised against synthetic modules rather than
the live package layout.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    LintConfig,
    build_registry,
    run_lint,
)
from repro.analysis.findings import BAD_SUPPRESSION, UNUSED_SUPPRESSION
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "data" / "avmemlint"

DET_CONFIG = LintConfig(
    randomness_modules=("rngmod.py",),
    engine_scope=("engine/",),
    hot_modules=(),
    service_modules=(),
)
HOT_CONFIG = LintConfig(
    randomness_modules=(),
    engine_scope=(),
    hot_modules=("engine/",),
    service_modules=(),
)
SVC_CONFIG = LintConfig(
    randomness_modules=(),
    engine_scope=(),
    hot_modules=(),
    service_modules=("svc/",),
)
SUPP_CONFIG = LintConfig(
    randomness_modules=(),
    engine_scope=(),
    hot_modules=(),
    service_modules=(),
)


def lint_fixture(tree, config, rules, hygiene=False):
    """Lint a fixture tree with a rule subset.

    Partial-rule runs legitimately leave other rules' suppressions
    unused; unless ``hygiene`` is set, keep only the selected rules'
    findings so each family test asserts against its own rule.
    """
    findings = run_lint([str(FIXTURES / tree)], config=config, rules=rules)
    if hygiene:
        return findings
    return [f for f in findings if f.rule in rules]


def by_path(findings):
    out = {}
    for finding in findings:
        out.setdefault(finding.path, []).append(finding)
    return out


# -- determinism family ------------------------------------------------


def test_random_module_rule_flags_imports_and_calls():
    findings = lint_fixture("determinism", DET_CONFIG, ["random-module"])
    paths = by_path(findings)
    assert set(paths) == {"engine/bad.py"}
    symbols = sorted(f.symbol for f in paths["engine/bad.py"])
    # two module-level imports + the random.random() draw
    assert symbols == ["<module>", "<module>", "draw_stdlib"]


def test_np_random_rule_flags_unrouted_construction():
    findings = lint_fixture("determinism", DET_CONFIG, ["np-random"])
    paths = by_path(findings)
    # rngmod.py is the sanctioned module: exempt; suppressed.py is waived.
    assert set(paths) == {"engine/bad.py"}
    snippets = {f.snippet for f in paths["engine/bad.py"]}
    assert snippets == {
        "from numpy.random import default_rng",
        "return np.random.default_rng()",
        "return default_rng()",
    }


def test_wall_clock_rule_allows_perf_counter():
    findings = lint_fixture("determinism", DET_CONFIG, ["wall-clock"])
    assert [(f.path, f.symbol) for f in findings] == [("engine/bad.py", "stamp")]


def test_set_iteration_rule_needs_rng_or_record_context():
    findings = lint_fixture("determinism", DET_CONFIG, ["set-iteration"])
    assert [(f.path, f.symbol) for f in findings] == [("engine/bad.py", "pick")]
    assert "sorted(...)" in findings[0].message


def test_determinism_suppressions_are_honored_and_consumed():
    findings = lint_fixture(
        "determinism", DET_CONFIG, ["np-random", "wall-clock"], hygiene=True
    )
    # suppressed.py contributes nothing: no findings, and both waivers
    # match a real finding so no unused-suppression hygiene report.
    assert all(f.path != "engine/suppressed.py" for f in findings)


# -- hot-loop family ---------------------------------------------------


def test_hot_loop_flags_every_population_loop_shape():
    findings = lint_fixture("hotloops", HOT_CONFIG, ["hot-loop"])
    paths = by_path(findings)
    assert set(paths) == {"engine/bad.py"}
    flagged = {f.symbol for f in paths["engine/bad.py"]}
    assert flagged == {"total_degree", "index_walk", "labels", "degrees"}
    assert all("Population row space" in f.message for f in findings)


def test_hot_loop_ignores_k_sized_and_off_scope_loops():
    findings = lint_fixture("hotloops", HOT_CONFIG, ["hot-loop"])
    assert all(f.path not in ("engine/clean.py", "other/offpath.py") for f in findings)


# -- service family ----------------------------------------------------


def test_lock_discipline_flags_unreachable_unlocked_mutation():
    findings = lint_fixture("service", SVC_CONFIG, ["lock-discipline"])
    assert [(f.path, f.symbol) for f in findings] == [
        ("svc/locks_bad.py", "BadSession.bump")
    ]
    assert "without acquiring" in findings[0].message


def test_lock_discipline_accepts_run_command_reachability():
    findings = lint_fixture("service", SVC_CONFIG, ["lock-discipline"])
    assert all(f.path != "svc/locks_ok.py" for f in findings)


def test_journal_coverage_flags_unjournaled_command():
    findings = lint_fixture("service", SVC_CONFIG, ["journal-coverage"])
    assert [(f.path, f.symbol) for f in findings] == [
        ("svc/journal_bad.py", "BadCommands.advance")
    ]
    assert "self.sim.run_until" in findings[0].message


def test_journal_coverage_follows_intra_class_helpers():
    findings = lint_fixture("service", SVC_CONFIG, ["journal-coverage"])
    assert all(f.path != "svc/journal_ok.py" for f in findings)


# -- suppression hygiene ----------------------------------------------


def test_reasonless_suppression_is_inert_and_reported():
    findings = lint_fixture("suppressions", SUPP_CONFIG, ["np-random"], hygiene=True)
    rules = sorted(f.rule for f in findings)
    assert rules == [BAD_SUPPRESSION, "np-random", UNUSED_SUPPRESSION]
    bad = next(f for f in findings if f.rule == BAD_SUPPRESSION)
    assert bad.symbol == "fork"
    unused = next(f for f in findings if f.rule == UNUSED_SUPPRESSION)
    assert "wall-clock" in unused.message


# -- fingerprints and the baseline ------------------------------------


def _finding(line=10, snippet="for node in nodes:"):
    return Finding(
        rule="hot-loop",
        path="engine/bad.py",
        line=line,
        column=4,
        message="msg",
        symbol="total_degree",
        snippet=snippet,
    )


def test_fingerprint_is_line_number_independent():
    assert _finding(line=10).fingerprint() == _finding(line=99).fingerprint()
    assert (
        _finding(snippet="for node in nodes:").fingerprint()
        != _finding(snippet="for nid in node_ids:").fingerprint()
    )


def test_baseline_roundtrip_new_and_stale(tmp_path):
    findings = lint_fixture("hotloops", HOT_CONFIG, ["hot-loop"])
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(str(path))
    loaded = Baseline.load(str(path))

    comparison = loaded.compare(findings)
    assert not comparison.new and not comparison.stale
    assert len(comparison.baselined) == len(findings)

    # Paying down one finding leaves a stale entry (honest burn-down).
    comparison = loaded.compare(findings[1:])
    assert len(comparison.stale) == 1
    assert comparison.stale[0]["fingerprint"] == findings[0].fingerprint()

    # A never-seen finding is new even with the rest baselined.
    extra = _finding(snippet="for nid in node_ids: pass")
    comparison = loaded.compare(findings + [extra])
    assert [f.fingerprint() for f in comparison.new] == [extra.fingerprint()]


def test_baseline_rejects_foreign_format(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"format": "something-else", "entries": {}}')
    with pytest.raises(ValueError):
        Baseline.load(str(path))


def test_registry_rejects_unknown_rule_ids():
    with pytest.raises(ValueError, match="unknown rule"):
        build_registry().select(["no-such-rule"])


# -- the repo self-check ----------------------------------------------


def test_src_repro_has_zero_non_baselined_findings():
    findings = run_lint([str(REPO_ROOT / "src" / "repro")])
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    comparison = baseline.compare(findings)
    assert comparison.new == [], "\n".join(f.render() for f in comparison.new)
    assert comparison.stale == [], (
        "stale baseline entries — regenerate with `repro lint --write-baseline`"
    )


def test_committed_baseline_is_the_hot_loop_burn_down():
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    assert baseline.entries
    assert {entry["rule"] for entry in baseline.entries.values()} == {"hot-loop"}


# -- CLI ---------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "random-module",
        "np-random",
        "wall-clock",
        "set-iteration",
        "hot-loop",
        "lock-discipline",
        "journal-coverage",
    ):
        assert rule_id in out


def _write_engine_module(root, body):
    engine = root / "ops"
    engine.mkdir(parents=True, exist_ok=True)
    (engine / "engine.py").write_text(textwrap.dedent(body))
    return root


def test_cli_gate_fails_on_injected_bare_default_rng(tmp_path, capsys):
    """The acceptance gate: a bare np.random.default_rng() smuggled into
    a hot-path module must fail `repro lint --fail-on-new`."""
    tree = _write_engine_module(
        tmp_path,
        """
        import numpy as np


        def build():
            return np.random.default_rng()
        """,
    )
    rc = main(
        ["lint", str(tree), "--no-baseline", "--fail-on-new", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["counts"]["new"] == 1
    assert payload["new"][0]["rule"] == "np-random"


def test_cli_clean_tree_passes_gate(tmp_path, capsys):
    tree = _write_engine_module(
        tmp_path,
        """
        def build(streams):
            return streams.pop()
        """,
    )
    rc = main(
        ["lint", str(tree), "--no-baseline", "--fail-on-new", "--format", "json"]
    )
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["counts"] == {
        "new": 0,
        "baselined": 0,
        "stale": 0,
    }


def test_cli_stale_baseline_guard(tmp_path, capsys):
    tree = _write_engine_module(
        tmp_path,
        """
        import numpy as np


        def build():
            return np.random.default_rng()
        """,
    )
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--write-baseline", "--baseline", str(baseline)]) == 0
    assert (
        main(
            [
                "lint", str(tree), "--baseline", str(baseline),
                "--fail-on-new", "--fail-on-stale",
            ]
        )
        == 0
    )
    # Pay the debt down without regenerating: the stale guard trips.
    _write_engine_module(tmp_path, "def build(streams):\n    return streams.pop()\n")
    assert (
        main(["lint", str(tree), "--baseline", str(baseline), "--fail-on-stale"]) == 1
    )
    out = capsys.readouterr().out
    assert "stale" in out
    # Regenerating the baseline clears it.
    assert main(["lint", str(tree), "--write-baseline", "--baseline", str(baseline)]) == 0
    assert (
        main(
            [
                "lint", str(tree), "--baseline", str(baseline),
                "--fail-on-new", "--fail-on-stale",
            ]
        )
        == 0
    )


def test_cli_unknown_rule_is_an_error():
    with pytest.raises(SystemExit):
        main(["lint", str(FIXTURES / "hotloops"), "--rules", "bogus"])
