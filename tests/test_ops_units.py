"""Unit tests for operation specs, messages, and forwarding policies."""

import numpy as np
import pytest

from repro.core.ids import make_node_ids
from repro.core.membership import MemberEntry
from repro.core.predicates import SliverKind
from repro.ops.anycast import (
    POLICY_NAMES,
    AnnealingPolicy,
    GreedyPolicy,
    RetriedGreedyPolicy,
    make_policy,
)
from repro.ops.messages import AnycastMessage
from repro.ops.results import AnycastRecord, AnycastStatus, MulticastRecord
from repro.ops.spec import PAPER_RANGES, PAPER_THRESHOLDS, InitiatorBand, TargetSpec


class TestTargetSpec:
    def test_range_containment_closed(self):
        spec = TargetSpec.range(0.2, 0.3)
        assert spec.contains(0.2)
        assert spec.contains(0.25)
        assert spec.contains(0.3)
        assert not spec.contains(0.19)
        assert not spec.contains(0.31)

    def test_threshold_exclusive_at_bound(self):
        spec = TargetSpec.threshold(0.9)
        assert not spec.contains(0.9)
        assert spec.contains(0.91)
        assert spec.contains(1.0)

    def test_distance_metric(self):
        spec = TargetSpec.range(0.4, 0.6)
        assert spec.distance(0.5) == 0.0
        assert spec.distance(0.3) == pytest.approx(0.1)
        assert spec.distance(0.9) == pytest.approx(0.3)

    def test_describe(self):
        assert TargetSpec.range(0.2, 0.3).describe() == "[0.2, 0.3]"
        assert TargetSpec.threshold(0.9).describe() == "av > 0.9"

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetSpec.range(0.5, 0.4)
        with pytest.raises(ValueError):
            TargetSpec.range(-0.1, 0.5)
        with pytest.raises(ValueError):
            TargetSpec(0.1, 0.2, kind="fancy")

    def test_paper_constants(self):
        assert len(PAPER_RANGES) == 3
        assert len(PAPER_THRESHOLDS) == 3
        assert (0.85, 0.95) in PAPER_RANGES
        assert 0.90 in PAPER_THRESHOLDS


class TestInitiatorBand:
    def test_band_membership(self):
        assert InitiatorBand.contains(InitiatorBand.LOW, 0.1)
        assert InitiatorBand.contains(InitiatorBand.MID, 0.5)
        assert InitiatorBand.contains(InitiatorBand.HIGH, 0.9)
        assert InitiatorBand.contains(InitiatorBand.HIGH, 1.0)
        assert not InitiatorBand.contains(InitiatorBand.LOW, 0.5)

    def test_bands_partition(self):
        for availability in np.linspace(0.0, 1.0, 101):
            count = sum(
                InitiatorBand.contains(b, float(availability))
                for b in (InitiatorBand.LOW, InitiatorBand.MID, InitiatorBand.HIGH)
            )
            assert count == 1

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError):
            InitiatorBand.validate("extreme")


class TestAnycastMessage:
    def test_hop_semantics(self):
        ids = make_node_ids(4)
        message = AnycastMessage(
            op_id=1, target=TargetSpec.range(0.8, 0.9), ttl=6, retry=8,
            attempt=1, origin=ids[0], sender=ids[0], path=(ids[0],),
        )
        hopped = message.hop(ids[0], ids[1], attempt=2)
        assert hopped.ttl == 5
        assert hopped.path == (ids[0], ids[1])
        assert hopped.sender == ids[0]
        assert hopped.hops_taken == 1
        assert message.ttl == 6  # immutability

    def test_hop_with_retry_update(self):
        ids = make_node_ids(3)
        message = AnycastMessage(
            op_id=1, target=TargetSpec.range(0.8, 0.9), ttl=6, retry=8,
            attempt=1, origin=ids[0], sender=ids[0], path=(ids[0],),
        )
        hopped = message.hop(ids[0], ids[1], attempt=2, retry=3)
        assert hopped.retry == 3


def _entries(availabilities):
    ids = make_node_ids(len(availabilities))
    return [
        MemberEntry(node=n, availability=a, kind=SliverKind.VERTICAL,
                    added_at=0.0, checked_at=0.0)
        for n, a in zip(ids, availabilities)
    ]


class TestGreedyPolicy:
    def test_in_range_first(self, rng):
        entries = _entries([0.1, 0.87, 0.5, 0.92, 0.3])
        target = TargetSpec.range(0.85, 0.95)
        ordered = GreedyPolicy().order_candidates(entries, target, 6, rng, set())
        in_range = {entries[1].node, entries[3].node}
        assert set(ordered[:2]) == in_range

    def test_outside_sorted_by_distance(self, rng):
        entries = _entries([0.1, 0.5, 0.3])
        target = TargetSpec.range(0.85, 0.95)
        ordered = GreedyPolicy().order_candidates(entries, target, 6, rng, set())
        distances = [0.75, 0.35, 0.55]
        expected = [e.node for _, e in sorted(zip(distances, entries))]
        assert ordered == expected

    def test_exclusion(self, rng):
        entries = _entries([0.9, 0.88])
        target = TargetSpec.range(0.85, 0.95)
        ordered = GreedyPolicy().order_candidates(
            entries, target, 6, rng, {entries[0].node}
        )
        assert ordered == [entries[1].node]

    def test_empty_entries(self, rng):
        target = TargetSpec.range(0.85, 0.95)
        assert GreedyPolicy().order_candidates([], target, 6, rng, set()) == []

    def test_no_ack_wanted(self):
        assert not GreedyPolicy().wants_ack
        assert RetriedGreedyPolicy().wants_ack


class TestAnnealingPolicy:
    def test_in_range_best_never_displaced(self, rng):
        policy = AnnealingPolicy()
        entries = _entries([0.9, 0.1, 0.3, 0.5])
        target = TargetSpec.range(0.85, 0.95)
        for _ in range(50):
            ordered = policy.order_candidates(entries, target, 6, rng, set())
            assert ordered[0] == entries[0].node

    def test_acceptance_probability_shape(self):
        policy = AnnealingPolicy()
        # p decreases as ttl shrinks (for fixed positive delta).
        assert policy.acceptance_probability(0.3, 6) > policy.acceptance_probability(0.3, 1)
        assert policy.acceptance_probability(0.0, 6) == 1.0
        assert policy.acceptance_probability(0.3, 0) == 0.0

    def test_exploration_happens(self, rng):
        policy = AnnealingPolicy()
        entries = _entries([0.7, 0.1, 0.2, 0.3, 0.4])
        target = TargetSpec.range(0.85, 0.95)
        firsts = {
            policy.order_candidates(entries, target, 6, rng, set())[0]
            for _ in range(100)
        }
        assert len(firsts) > 1  # sometimes explores away from greedy best

    def test_single_candidate_passthrough(self, rng):
        policy = AnnealingPolicy()
        entries = _entries([0.5])
        target = TargetSpec.range(0.85, 0.95)
        assert policy.order_candidates(entries, target, 6, rng, set()) == [
            entries[0].node
        ]


class TestPolicyRegistry:
    def test_all_names(self):
        assert set(POLICY_NAMES) == {"greedy", "retry-greedy", "anneal"}
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("teleport")


class TestRecords:
    def test_anycast_finalize_pending_becomes_lost(self):
        ids = make_node_ids(1)
        record = AnycastRecord(
            op_id=0, initiator=ids[0], target=TargetSpec.range(0.1, 0.2),
            policy="greedy", selector="hs+vs", started_at=0.0,
        )
        assert not record.delivered
        record.finalize()
        assert record.status == AnycastStatus.LOST

    def test_anycast_finalize_keeps_terminal(self):
        ids = make_node_ids(1)
        record = AnycastRecord(
            op_id=0, initiator=ids[0], target=TargetSpec.range(0.1, 0.2),
            policy="greedy", selector="hs+vs", started_at=0.0,
            status=AnycastStatus.DELIVERED, delivered_at=1.0,
        )
        record.finalize()
        assert record.status == AnycastStatus.DELIVERED
        assert record.latency == pytest.approx(1.0)

    def test_multicast_metrics(self):
        ids = make_node_ids(6)
        record = MulticastRecord(
            op_id=0, initiator=ids[0], target=TargetSpec.range(0.8, 0.9),
            mode="flood", selector="hs+vs", started_at=100.0,
            eligible={ids[1], ids[2], ids[3], ids[4]},
        )
        record.deliveries = {ids[1]: 100.1, ids[2]: 100.3}
        record.spam = [(ids[5], 100.2)]
        assert record.reliability() == pytest.approx(0.5)
        assert record.spam_ratio() == pytest.approx(0.25)
        assert record.worst_latency() == pytest.approx(0.3)
        assert record.reached_range

    def test_multicast_empty_eligible_is_nan(self):
        ids = make_node_ids(1)
        record = MulticastRecord(
            op_id=0, initiator=ids[0], target=TargetSpec.range(0.8, 0.9),
            mode="flood", selector="hs+vs", started_at=0.0,
        )
        assert np.isnan(record.reliability())
        assert np.isnan(record.spam_ratio())
        assert record.worst_latency() is None

    def test_row_serialization(self):
        ids = make_node_ids(1)
        record = AnycastRecord(
            op_id=3, initiator=ids[0], target=TargetSpec.threshold(0.9),
            policy="greedy", selector="vs", started_at=0.0,
        )
        row = record.as_row()
        assert row["op_id"] == 3
        assert row["target"] == "av > 0.9"
