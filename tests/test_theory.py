"""Section 2.2 theory validated against the implementation.

These tests close the loop between the analysis (Theorems 1-3) and the
code: overlay graphs sampled from the predicates must match the
closed-form expectations within sampling error.
"""

import numpy as np
import pytest

from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.core.theory import (
    expected_degree,
    expected_horizontal_size,
    expected_vertical_size,
    theorem1_band_counts,
    theorem3_bound,
)
from repro.overlays.graphs import band_connectivity, build_overlay_graph, sliver_sizes
from repro.util.mathx import log_at_least_one


@pytest.fixture(scope="module")
def uniform_population():
    """600 nodes with uniform availabilities and the matching PDF.

    The PDF is fit unweighted with ``N* = 600`` so that the static graph
    over all 600 descriptors (everyone treated as online) is exactly the
    population the theory expressions integrate over — the comparison is
    then apples-to-apples.
    """
    rng = np.random.default_rng(777)
    ids = make_node_ids(600)
    avs = rng.uniform(0.02, 0.98, 600)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    descriptors = [NodeDescriptor(n, float(a)) for n, a in zip(ids, avs)]
    return descriptors, pdf


class TestTheorem1:
    """Logarithmic vertical sliver: uniform coverage of availability space."""

    def test_band_counts_equal(self, uniform_population):
        _, pdf = uniform_population
        predicate = paper_predicate(pdf)
        counts = theorem1_band_counts(predicate, av_x=0.5, band_width=0.1)
        populated = [v for v in counts.values() if v > 0.05]
        assert len(populated) >= 5
        # Uniform coverage: max/min within a modest factor (discretized
        # pdf + capping produce small deviations).
        assert max(populated) / min(populated) < 1.8

    def test_empirical_matches_expectation(self, uniform_population):
        descriptors, pdf = uniform_population
        predicate = paper_predicate(pdf)
        graph = build_overlay_graph(descriptors, predicate)
        sizes = sliver_sizes(graph)
        mids = [d for d in descriptors if 0.45 <= d.availability <= 0.55]
        empirical = np.mean([sizes[d.node][1] for d in mids])
        theoretical = np.mean(
            [expected_vertical_size(predicate, d.availability) for d in mids]
        )
        assert empirical == pytest.approx(theoretical, rel=0.30)


class TestTheorem2:
    """Logarithmic-constant horizontal sliver: band connectivity w.h.p."""

    def test_bands_connected(self, uniform_population):
        descriptors, pdf = uniform_population
        predicate = paper_predicate(pdf, c2=1.5)
        graph = build_overlay_graph(descriptors, predicate)
        connected = sum(
            band_connectivity(graph, center - 0.1, center + 0.1)
            for center in (0.2, 0.35, 0.5, 0.65, 0.8)
        )
        assert connected >= 4  # w.h.p., allow one unlucky band


class TestTheorem3:
    """Total degree bounded, O(log N*) when the band is dense."""

    def test_expected_degree_below_bound(self, uniform_population):
        _, pdf = uniform_population
        predicate = paper_predicate(pdf)
        for a in (0.1, 0.3, 0.5, 0.7, 0.9):
            assert expected_degree(predicate, a) <= theorem3_bound(
                pdf, a, predicate.epsilon, predicate.vertical.c1
            ) + 1e-6

    def test_empirical_degree_below_bound(self, uniform_population):
        descriptors, pdf = uniform_population
        predicate = paper_predicate(pdf)
        graph = build_overlay_graph(descriptors, predicate)
        sizes = sliver_sizes(graph)
        violations = 0
        for d in descriptors:
            hs, vs = sizes[d.node]
            bound = theorem3_bound(pdf, d.availability, 0.1, 3.0)
            if hs + vs > bound * 1.5:  # slack for sampling noise
                violations += 1
        assert violations / len(descriptors) < 0.05

    def test_degree_is_logarithmic_scale(self, uniform_population):
        """Mean degree ~ O(log N*): far below N*."""
        _, pdf = uniform_population
        predicate = paper_predicate(pdf)
        degree = expected_degree(predicate, 0.5)
        assert degree < 10 * log_at_least_one(pdf.n_star)
        assert degree < pdf.n_star / 4


class TestTheoryHelpers:
    def test_horizontal_plus_vertical_equals_degree(self, uniform_population):
        _, pdf = uniform_population
        predicate = paper_predicate(pdf)
        total = expected_degree(predicate, 0.4)
        parts = expected_horizontal_size(predicate, 0.4) + expected_vertical_size(
            predicate, 0.4
        )
        assert total == pytest.approx(parts)

    def test_horizontal_size_zero_outside_band(self, uniform_population):
        """HS expectation only integrates the ±ε band."""
        _, pdf = uniform_population
        predicate = paper_predicate(pdf)
        hs = expected_horizontal_size(predicate, 0.5)
        n_band = pdf.n_star_av(0.5, predicate.epsilon)
        assert 0.0 < hs <= n_band

    def test_theorem1_skips_horizontal_bands(self, uniform_population):
        _, pdf = uniform_population
        predicate = paper_predicate(pdf)
        counts = theorem1_band_counts(predicate, av_x=0.45, band_width=0.1)
        for (lo, hi) in counts:
            assert hi <= 0.45 - 0.1 + 1e-9 or lo >= 0.45 + 0.1 - 1e-9
