"""Property-based tests on operation invariants (hypothesis).

Random small systems and random operations; the invariants checked are
the ones every figure implicitly relies on:

* anycasts always reach a terminal status once the system settles;
* hop counts never exceed the TTL budget;
* multicast deliveries are a subset of the population, each at most once;
* retried-greedy never uses more retries than its budget.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, random_overlay_predicate
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView
from repro.ops.engine import OperationEngine
from repro.ops.results import AnycastStatus
from repro.ops.spec import TargetSpec
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


def build_random_system(avs, offline_mask, seed):
    rng = np.random.default_rng(seed)
    n = len(avs)
    ids = make_node_ids(n)
    schedules = {
        node: NodeSchedule([] if offline else [(0.0, 1e9)])
        for node, offline in zip(ids, offline_mask)
    }
    trace = ChurnTrace(schedules, horizon=1e9)
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.04), presence=trace, rng=rng)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    predicate = random_overlay_predicate(pdf, probability=0.6)

    class Fixed:
        def query(self, node):
            return float(avs[ids.index(node)])

    service = Fixed()
    coarse = GlobalSampleView(sim, ids, max(1, n - 1), rng=rng, presence=trace)
    config = AvmemConfig()
    nodes = {}
    for node_id in ids:
        nodes[node_id] = AvmemNode(
            node_id, sim, network, predicate, config,
            CachedAvailabilityView(service, sim), coarse, rng=rng,
        )
    engine = OperationEngine(
        sim, network, nodes, config, truth_availability=service.query, rng=rng
    )
    descriptors = [NodeDescriptor(node, service.query(node)) for node in ids]
    for node_id, node in nodes.items():
        node.bootstrap_from([d for d in descriptors if d.node != node_id])
    return sim, nodes, engine, ids


system_strategy = st.tuples(
    st.lists(st.floats(0.05, 0.95), min_size=4, max_size=16),
    st.integers(0, 2**31 - 1),
    st.floats(0.0, 0.9),   # target lo
    st.floats(0.02, 0.1),  # target width
    st.sampled_from(["greedy", "retry-greedy", "anneal"]),
    st.sampled_from(["hs", "vs", "hs+vs"]),
)


@given(params=system_strategy)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_anycast_invariants(params):
    avs, seed, lo, width, policy, selector = params
    rng = np.random.default_rng(seed)
    offline_mask = rng.random(len(avs)) < 0.3
    offline_mask[0] = False  # keep the initiator alive
    sim, nodes, engine, ids = build_random_system(avs, offline_mask, seed)
    target = TargetSpec.range(lo, min(1.0, lo + width))
    ttl = int(rng.integers(1, 8))
    retry = int(rng.integers(1, 6))
    record = engine.anycast(
        ids[0], target, policy=policy, selector=selector, ttl=ttl, retry=retry
    )
    sim.run_until(sim.now + 30.0)
    record.finalize()
    # 1. Terminal status.
    assert record.status in AnycastStatus.TERMINAL
    # 2. Hop budget respected.
    if record.hops is not None:
        assert 0 <= record.hops <= ttl
    # 3. Delivery implies a node that believed itself in range.
    if record.delivered:
        assert record.delivery_node in nodes
        assert record.delivered_at >= record.started_at
    # 4. Retry budget respected.
    assert record.retries_used <= retry


@given(params=system_strategy)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_multicast_invariants(params):
    avs, seed, lo, width, _, selector = params
    rng = np.random.default_rng(seed)
    offline_mask = rng.random(len(avs)) < 0.2
    offline_mask[0] = False
    sim, nodes, engine, ids = build_random_system(avs, offline_mask, seed)
    target = TargetSpec.range(lo, min(1.0, lo + width))
    mode = "flood" if seed % 2 == 0 else "gossip"
    record = engine.multicast(ids[0], target, mode=mode, selector=selector)
    sim.run_until(sim.now + 30.0)
    population = set(ids)
    # 1. Deliveries and spam stay inside the population; no overlap.
    assert set(record.deliveries) <= population
    spam_nodes = {node for node, _ in record.spam}
    assert spam_nodes <= population
    assert not (spam_nodes & set(record.deliveries))
    # 2. Delivery timestamps never precede the start.
    for when in record.deliveries.values():
        assert when >= record.started_at
    # 3. Reliability and spam ratio are consistent with the raw sets.
    if record.eligible:
        expected = sum(1 for n in record.deliveries if n in record.eligible) / len(
            record.eligible
        )
        assert record.reliability() == pytest.approx(expected)
    # 4. Eligible nodes were online and truly in range at start.
    for node in record.eligible:
        assert target.contains(engine.truth_availability(node))
