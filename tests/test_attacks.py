"""Tests for the attack-analysis experiments (Figs 5-6 machinery)."""

import numpy as np
import pytest

from repro.attacks.flooding import (
    BandedRates,
    flooding_attack_experiment,
    legitimate_rejection_experiment,
)
from repro.attacks.selfish import spray_attack


class TestBandedRates:
    def test_overall_and_rows(self):
        from repro.core.ids import make_node_ids

        ids = make_node_ids(3)
        rates = BandedRates(
            cushion=0.0,
            band_rates={0.0: 0.1, 0.5: 0.3},
            sender_rates={ids[0]: 0.1, ids[1]: 0.2, ids[2]: 0.3},
        )
        assert rates.overall == pytest.approx(0.2)
        assert rates.max_band_rate == pytest.approx(0.3)
        assert rates.rows() == [(0.0, 0.1), (0.5, 0.3)]

    def test_empty_rates_nan(self):
        rates = BandedRates(cushion=0.0)
        assert np.isnan(rates.overall)
        assert np.isnan(rates.max_band_rate)


class TestAttackExperiments:
    """Run on the shared small simulation (realistic churn and caches)."""

    def test_flooding_acceptance_low(self, small_simulation):
        s = small_simulation
        rates = flooding_attack_experiment(
            s.nodes, s.predicate, s.true_availability,
            cushion=0.0, max_targets=50, rng=np.random.default_rng(0),
        )
        # Paper's headline: < 10% acceptance in every band.  Allow slack
        # for the small population.
        assert rates.overall < 0.20
        assert len(rates.sender_rates) > 10

    def test_cushion_raises_acceptance(self, small_simulation):
        s = small_simulation
        kwargs = dict(max_targets=50, rng=np.random.default_rng(0))
        base = flooding_attack_experiment(
            s.nodes, s.predicate, s.true_availability, cushion=0.0, **kwargs
        )
        wide = flooding_attack_experiment(
            s.nodes, s.predicate, s.true_availability, cushion=0.1, **kwargs
        )
        assert wide.overall > base.overall

    def test_rejection_bounded(self, small_simulation):
        s = small_simulation
        rates = legitimate_rejection_experiment(
            s.nodes, s.predicate, s.true_availability, cushion=0.0
        )
        assert 0.0 <= rates.overall < 0.5

    def test_cushion_lowers_rejection(self, small_simulation):
        s = small_simulation
        base = legitimate_rejection_experiment(
            s.nodes, s.predicate, s.true_availability, cushion=0.0
        )
        cushioned = legitimate_rejection_experiment(
            s.nodes, s.predicate, s.true_availability, cushion=0.1
        )
        assert cushioned.overall <= base.overall + 1e-9

    def test_attacker_subset(self, small_simulation):
        s = small_simulation
        attackers = s.online_ids()[:5]
        rates = flooding_attack_experiment(
            s.nodes, s.predicate, s.true_availability,
            cushion=0.0, attackers=attackers, max_targets=30,
        )
        assert set(rates.sender_rates) <= set(attackers)


class TestSprayAttack:
    def test_spray_outcome_consistency(self, small_simulation):
        s = small_simulation
        attacker_id = s.online_ids()[0]
        outcome = spray_attack(
            s.nodes[attacker_id], s.nodes, s.predicate, s.true_availability,
        )
        assert outcome.attacker == attacker_id
        assert outcome.accepted_total <= outcome.targets_tried
        assert outcome.accepted_illegitimate <= outcome.accepted_total
        assert outcome.legitimate_targets <= outcome.targets_tried

    def test_extra_known_expands_targets(self, small_simulation):
        s = small_simulation
        attacker_id = s.online_ids()[1]
        base = spray_attack(
            s.nodes[attacker_id], s.nodes, s.predicate, s.true_availability
        )
        extra = spray_attack(
            s.nodes[attacker_id], s.nodes, s.predicate, s.true_availability,
            extra_known=s.online_ids(),
        )
        assert extra.targets_tried >= base.targets_tried

    def test_illegitimate_audience_rate_bounded(self, small_simulation):
        s = small_simulation
        attacker_id = s.online_ids()[2]
        outcome = spray_attack(
            s.nodes[attacker_id], s.nodes, s.predicate, s.true_availability,
            extra_known=s.online_ids(),
        )
        rate = outcome.illegitimate_audience_rate
        assert np.isnan(rate) or 0.0 <= rate <= 1.0
