"""Unit + property tests for the util package."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.mathx import (
    clamp,
    empirical_cdf,
    interval_distance,
    interval_overlap,
    log_at_least_one,
    mean_or_nan,
    point_to_interval_distance,
    quantile,
)
from repro.util.randomness import RandomRouter, derive_seed, stream
from repro.util.validation import (
    check_fraction_interval,
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)


class TestRandomness:
    def test_streams_memoized(self):
        router = RandomRouter(seed=7)
        assert router.get("a") is router.get("a")
        assert router.get("a") is not router.get("b")

    def test_deterministic_across_routers(self):
        a = RandomRouter(seed=7).get("churn").random(5)
        b = RandomRouter(seed=7).get("churn").random(5)
        assert np.allclose(a, b)

    def test_streams_independent(self):
        router = RandomRouter(seed=7)
        a = router.get("x").random(5)
        b = router.get("y").random(5)
        assert not np.allclose(a, b)

    def test_fork_changes_namespace(self):
        base = RandomRouter(seed=7)
        fork = base.fork("run-1")
        assert fork.seed != base.seed
        assert not np.allclose(base.get("s").random(3), fork.get("s").random(3))

    def test_reset(self):
        router = RandomRouter(seed=1)
        first = router.get("a").random(3)
        router.reset("a")
        again = router.get("a").random(3)
        assert np.allclose(first, again)

    def test_reset_all(self):
        router = RandomRouter(seed=1)
        router.get("a")
        router.get("b")
        router.reset()
        assert router.names() == ()

    def test_derive_seed_stable(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")
        assert derive_seed(42, "x") != derive_seed(42, "y")
        assert derive_seed(42, "x") != derive_seed(43, "x")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "x")

    def test_stream_function(self):
        assert np.allclose(stream(5, "a").random(4), stream(5, "a").random(4))


class TestIntervalMath:
    def test_clamp(self):
        assert clamp(5.0, 0.0, 1.0) == 1.0
        assert clamp(-5.0, 0.0, 1.0) == 0.0
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_overlap(self):
        assert interval_overlap((0, 2), (1, 3)) == 1.0
        assert interval_overlap((0, 1), (2, 3)) == 0.0
        assert interval_overlap((0, 5), (1, 2)) == 1.0

    def test_interval_distance(self):
        assert interval_distance((0, 1), (2, 3)) == 1.0
        assert interval_distance((2, 3), (0, 1)) == 1.0
        assert interval_distance((0, 2), (1, 3)) == 0.0

    def test_point_distance(self):
        assert point_to_interval_distance(0.5, (0.2, 0.8)) == 0.0
        assert point_to_interval_distance(0.1, (0.2, 0.8)) == pytest.approx(0.1)
        assert point_to_interval_distance(0.9, (0.2, 0.8)) == pytest.approx(0.1)


class TestStatistics:
    def test_empirical_cdf(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([0.25, 0.75, 1.0])

    def test_empirical_cdf_empty(self):
        xs, ps = empirical_cdf([])
        assert xs.size == 0 and ps.size == 0

    def test_quantile(self):
        assert quantile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)
        assert math.isnan(quantile([], 0.5))
        with pytest.raises(ValueError):
            quantile([1.0], 2.0)

    def test_mean_or_nan(self):
        assert mean_or_nan([1.0, 3.0]) == 2.0
        assert math.isnan(mean_or_nan([]))

    def test_log_at_least_one(self):
        assert log_at_least_one(0.5) == 1.0
        assert log_at_least_one(1.0) == 1.0
        assert log_at_least_one(math.e**2) == pytest.approx(2.0)


class TestValidation:
    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_positive(self):
        assert check_positive(2, "x") == 2.0
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_range(self):
        assert check_range(1.0, 2.0, "r") == (1.0, 2.0)
        with pytest.raises(ValueError):
            check_range(2.0, 1.0, "r")
        with pytest.raises(ValueError):
            check_range(float("inf"), 1.0, "r")

    def test_fraction_interval(self):
        assert check_fraction_interval(0.2, 0.3, "f") == (0.2, 0.3)
        with pytest.raises(ValueError):
            check_fraction_interval(-0.1, 0.3, "f")
        with pytest.raises(ValueError):
            check_fraction_interval(0.2, 1.3, "f")


@given(
    point=st.floats(-10, 10),
    lo=st.floats(-10, 10),
    hi=st.floats(-10, 10),
)
@settings(max_examples=80, deadline=None)
def test_point_distance_properties(point, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    distance = point_to_interval_distance(point, (lo, hi))
    assert distance >= 0.0
    if lo <= point <= hi:
        assert distance == 0.0
    else:
        assert distance == pytest.approx(min(abs(point - lo), abs(point - hi)))


@given(samples=st.lists(st.floats(-100, 100), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_empirical_cdf_properties(samples):
    xs, ps = empirical_cdf(samples)
    assert np.all(np.diff(xs) > 0)
    assert np.all(np.diff(ps) >= -1e-12)
    assert ps[-1] == pytest.approx(1.0)
