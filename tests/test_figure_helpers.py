"""Unit tests for the shared figure-driver helper modules."""

import numpy as np
import pytest

from repro.core.ids import make_node_ids
from repro.experiments.figures._anycast_common import (
    PAPER_VARIANTS,
    AnycastVariant,
    mean_delivered_latency_ms,
    status_fractions,
)
from repro.experiments.figures._multicast_common import PAPER_SCENARIOS
from repro.ops.results import AnycastRecord, AnycastStatus
from repro.ops.spec import TargetSpec


def _record(status, latency=None):
    ids = make_node_ids(1)
    record = AnycastRecord(
        op_id=0, initiator=ids[0], target=TargetSpec.range(0.1, 0.2),
        policy="greedy", selector="hs+vs", started_at=0.0, status=status,
    )
    if latency is not None:
        record.delivered_at = latency
    return record


class TestStatusFractions:
    def test_fractions_sum_to_one(self):
        records = [
            _record(AnycastStatus.DELIVERED),
            _record(AnycastStatus.DELIVERED),
            _record(AnycastStatus.TTL_EXPIRED),
            _record(AnycastStatus.RETRY_EXPIRED),
        ]
        fractions = status_fractions(records)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[AnycastStatus.DELIVERED] == pytest.approx(0.5)

    def test_empty_records(self):
        assert status_fractions([]) == {}

    def test_all_terminal_statuses_keyed(self):
        fractions = status_fractions([_record(AnycastStatus.LOST)])
        assert set(fractions) == set(AnycastStatus.TERMINAL)


class TestLatencyHelper:
    def test_mean_over_delivered_only(self):
        records = [
            _record(AnycastStatus.DELIVERED, latency=0.1),
            _record(AnycastStatus.DELIVERED, latency=0.3),
            _record(AnycastStatus.TTL_EXPIRED),
        ]
        assert mean_delivered_latency_ms(records) == pytest.approx(200.0)

    def test_no_deliveries_is_nan(self):
        assert np.isnan(mean_delivered_latency_ms([_record(AnycastStatus.LOST)]))


class TestPaperConstants:
    def test_four_anycast_variants(self):
        labels = [v.label for v in PAPER_VARIANTS]
        assert labels == ["VS-only", "HS+VS", "HS-only", "sim-annealing"]
        assert all(isinstance(v, AnycastVariant) for v in PAPER_VARIANTS)

    def test_five_multicast_scenarios(self):
        assert len(PAPER_SCENARIOS) == 5
        modes = {s.mode for s in PAPER_SCENARIOS}
        assert modes == {"flood", "gossip"}
        # Scenario specs coerce to valid target specs.
        for scenario in PAPER_SCENARIOS:
            spec = scenario.spec()
            assert 0.0 <= spec.lo <= spec.hi <= 1.0
