"""Unit tests for the shared figure-driver helper modules."""

import numpy as np
import pytest

from repro.core.ids import make_node_ids
from repro.experiments.figures._anycast_common import (
    PAPER_VARIANTS,
    AnycastVariant,
    mean_delivered_latency_ms,
    status_fractions,
    variant_plan,
)
from repro.experiments.figures._multicast_common import PAPER_SCENARIOS, scenario_plan
from repro.experiments.harness import get_scale
from repro.ops.log import OperationLog
from repro.ops.results import AnycastRecord, AnycastStatus
from repro.ops.spec import InitiatorBand, TargetSpec


def _record(status, latency=None):
    ids = make_node_ids(1)
    record = AnycastRecord(
        op_id=0, initiator=ids[0], target=TargetSpec.range(0.1, 0.2),
        policy="greedy", selector="hs+vs", started_at=0.0, status=status,
    )
    if latency is not None:
        record.delivered_at = latency
    return record


def _log(records):
    return OperationLog.from_records(anycasts=records)


class TestStatusFractions:
    def test_fractions_sum_to_one(self):
        log = _log([
            _record(AnycastStatus.DELIVERED),
            _record(AnycastStatus.DELIVERED),
            _record(AnycastStatus.TTL_EXPIRED),
            _record(AnycastStatus.RETRY_EXPIRED),
        ])
        fractions = status_fractions(log)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[AnycastStatus.DELIVERED] == pytest.approx(0.5)

    def test_empty_records(self):
        assert status_fractions(_log([])) == {}

    def test_all_terminal_statuses_keyed(self):
        fractions = status_fractions(_log([_record(AnycastStatus.LOST)]))
        assert set(fractions) == set(AnycastStatus.TERMINAL)


class TestLatencyHelper:
    def test_mean_over_delivered_only(self):
        log = _log([
            _record(AnycastStatus.DELIVERED, latency=0.1),
            _record(AnycastStatus.DELIVERED, latency=0.3),
            _record(AnycastStatus.TTL_EXPIRED),
        ])
        assert mean_delivered_latency_ms(log) == pytest.approx(200.0)

    def test_no_deliveries_is_nan(self):
        assert np.isnan(mean_delivered_latency_ms(_log([_record(AnycastStatus.LOST)])))


class TestPaperConstants:
    def test_four_anycast_variants(self):
        labels = [v.label for v in PAPER_VARIANTS]
        assert labels == ["VS-only", "HS+VS", "HS-only", "sim-annealing"]
        assert all(isinstance(v, AnycastVariant) for v in PAPER_VARIANTS)

    def test_five_multicast_scenarios(self):
        assert len(PAPER_SCENARIOS) == 5
        modes = {s.mode for s in PAPER_SCENARIOS}
        assert modes == {"flood", "gossip"}
        # Scenario specs coerce to valid target specs.
        for scenario in PAPER_SCENARIOS:
            spec = scenario.spec()
            assert 0.0 <= spec.lo <= spec.hi <= 1.0


class TestFigurePlans:
    """The figure cells compile to the historical batch schedules."""

    def test_variant_plan_replicates_batch_timing(self):
        tier = get_scale("small")
        plan = variant_plan(tier, PAPER_VARIANTS[0], InitiatorBand.MID, (0.85, 0.95))
        assert len(plan.items) == tier.runs
        assert plan.total_operations == tier.total_messages
        schedule = plan.compile()
        assert len(schedule) == tier.total_messages
        # First run launches 2 s apart starting at phase 0.
        first = schedule.times[: tier.messages_per_run]
        np.testing.assert_allclose(np.diff(first), 2.0)
        assert first[0] == 0.0
        # Each later run starts one settle window after the previous
        # run's trailing spacing.
        run_span = tier.messages_per_run * 2.0 + 30.0
        starts = schedule.times[:: tier.messages_per_run]
        np.testing.assert_allclose(np.diff(starts), run_span)

    def test_scenario_plan_matches_scenario(self):
        tier = get_scale("small")
        scenario = PAPER_SCENARIOS[0]
        plan = scenario_plan(tier, scenario)
        assert all(item.kind == "multicast" for item in plan.items)
        assert all(item.mode == scenario.mode for item in plan.items)
        assert all(item.band == scenario.band for item in plan.items)
        assert plan.total_operations == tier.total_messages
