"""Convergence of the maintenance protocols to the predicate graph.

The consistency property means the overlay a node *should* have is a
pure function of (ids, availabilities).  With a static population and
fixed availability answers, discovery must converge to exactly that
neighborhood — no more (refresh would evict), no less (coverage of the
coarse view), in roughly N/v discovery periods (Section 3.1).
"""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView
from repro.sim.engine import Simulator
from repro.sim.network import Network


@pytest.fixture(scope="module")
def static_system():
    """120 always-online nodes with fixed availability answers."""
    rng = np.random.default_rng(31)
    ids = make_node_ids(120)
    schedules = {node: NodeSchedule([(0.0, 1e9)]) for node in ids}
    trace = ChurnTrace(schedules, horizon=1e9)
    sim = Simulator()
    network = Network(sim, presence=trace, rng=rng)
    avs = rng.uniform(0.05, 0.95, 120)
    index = {node: i for i, node in enumerate(ids)}
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    predicate = paper_predicate(pdf)

    class Fixed:
        def query(self, node):
            return float(avs[index[node]])

    service = Fixed()
    coarse = GlobalSampleView(
        sim, ids, view_size=12, rng=rng, presence=trace, period=60.0,
        stale_fraction=0.0,
    )
    config = AvmemConfig()
    nodes = {
        node_id: AvmemNode(
            node_id, sim, network, predicate, config,
            CachedAvailabilityView(service, sim), coarse, rng=rng,
        )
        for node_id in ids
    }
    # Run discovery for ~4x the expected N/v coverage time.
    rounds = 4 * (120 // 12)
    for _ in range(rounds):
        for node in nodes.values():
            node.discovery_step()
        sim.run_until(sim.now + 60.0)
    def truth_neighborhood(node_id):
        me = NodeDescriptor(node_id, service.query(node_id))
        return {
            other
            for other in ids
            if other != node_id
            and predicate.evaluate(me, NodeDescriptor(other, service.query(other)))
        }
    return nodes, ids, truth_neighborhood


class TestDiscoveryConvergence:
    def test_no_false_members(self, static_system):
        """Everything discovered genuinely satisfies the predicate."""
        nodes, ids, truth = static_system
        for node_id in ids[:40]:
            expected = truth(node_id)
            actual = set(nodes[node_id].lists.neighbor_ids())
            assert actual <= expected, node_id

    def test_high_coverage(self, static_system):
        """Discovery finds (nearly) the whole predicate neighborhood."""
        nodes, ids, truth = static_system
        coverages = []
        for node_id in ids:
            expected = truth(node_id)
            if not expected:
                continue
            actual = set(nodes[node_id].lists.neighbor_ids())
            coverages.append(len(actual & expected) / len(expected))
        assert np.mean(coverages) > 0.9

    def test_refresh_is_stable_at_convergence(self, static_system):
        """With static availabilities, refresh evicts nothing."""
        nodes, ids, _ = static_system
        for node_id in ids[:30]:
            assert nodes[node_id].refresh_step() == 0

    def test_sliver_classification_correct(self, static_system):
        nodes, ids, _ = static_system
        node = nodes[ids[0]]
        me_av = node.self_descriptor().availability
        for entry in node.lists.horizontal:
            assert abs(entry.availability - me_av) < node.predicate.epsilon
        for entry in node.lists.vertical:
            assert abs(entry.availability - me_av) >= node.predicate.epsilon
