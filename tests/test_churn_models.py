"""Unit tests for Markov churn models and the synthetic Overnet generator."""

import numpy as np
import pytest

from repro.churn.models import (
    DiurnalProfile,
    MarkovChurnModel,
    sample_epoch_matrix,
    scaled_session_epochs,
)
from repro.churn.overnet import (
    DEFAULT_MIXTURE,
    OvernetTraceConfig,
    generate_overnet_trace,
    sample_availabilities,
)
from repro.churn.stats import summarize_trace


class TestMarkovChurnModel:
    def test_stationary_availability(self, rng):
        model = MarkovChurnModel(0.6, mean_online_epochs=4.0)
        presence = model.sample_presence(20000, rng)
        assert presence.mean() == pytest.approx(0.6, abs=0.05)

    def test_mean_session_length(self, rng):
        model = MarkovChurnModel(0.5, mean_online_epochs=5.0)
        presence = model.sample_presence(50000, rng)
        runs = []
        current = 0
        for value in presence:
            if value:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert np.mean(runs) == pytest.approx(5.0, rel=0.15)

    def test_degenerate_always_on(self, rng):
        presence = MarkovChurnModel(1.0).sample_presence(100, rng)
        assert presence.all()

    def test_degenerate_always_off(self, rng):
        presence = MarkovChurnModel(0.0).sample_presence(100, rng)
        assert not presence.any()

    def test_invalid_availability_rejected(self):
        with pytest.raises(ValueError):
            MarkovChurnModel(1.5)

    def test_short_sessions_rejected(self):
        with pytest.raises(ValueError):
            MarkovChurnModel(0.5, mean_online_epochs=0.5)

    def test_zero_epochs_rejected(self, rng):
        with pytest.raises(ValueError):
            MarkovChurnModel(0.5).sample_presence(0, rng)


class TestScaledSessions:
    def test_grows_with_availability(self):
        low = scaled_session_epochs(0.2, 3.0, 200.0)
        high = scaled_session_epochs(0.9, 3.0, 200.0)
        assert high > low

    def test_floor_at_base(self):
        assert scaled_session_epochs(0.01, 3.0, 200.0) >= 3.0

    def test_cap_respected(self):
        assert scaled_session_epochs(0.9999, 3.0, 50.0) == 50.0
        assert scaled_session_epochs(1.0, 3.0, 50.0) == 50.0


class TestDiurnalProfile:
    def test_zero_amplitude_is_identity(self):
        profile = DiurnalProfile(amplitude=0.0)
        assert profile.multiplier(0.0) == 1.0
        assert profile.multiplier(12345.0) == 1.0

    def test_peak_at_peak_hour(self):
        profile = DiurnalProfile(amplitude=0.3, peak_hour=21.0)
        peak = profile.multiplier(21 * 3600.0)
        trough = profile.multiplier(9 * 3600.0)
        assert peak == pytest.approx(1.3)
        assert trough == pytest.approx(0.7)

    def test_daily_period(self):
        profile = DiurnalProfile(amplitude=0.3)
        assert profile.multiplier(3600.0) == pytest.approx(
            profile.multiplier(3600.0 + 86400.0)
        )


class TestEpochMatrix:
    def test_shape(self, rng):
        matrix = sample_epoch_matrix([0.5, 0.9], epochs=50, rng=rng)
        assert matrix.shape == (50, 2)
        assert matrix.dtype == bool

    def test_calibration_across_population(self, rng):
        targets = [0.2, 0.5, 0.8] * 40
        matrix = sample_epoch_matrix(targets, epochs=600, rng=rng)
        empirical = matrix.mean(axis=0)
        assert np.mean(np.abs(empirical - np.array(targets))) < 0.12

    def test_diurnal_fraction_validated(self, rng):
        with pytest.raises(ValueError):
            sample_epoch_matrix([0.5], 10, rng, diurnal_fraction=1.5)


class TestOvernetGenerator:
    def test_mixture_half_below_030(self, rng):
        samples = sample_availabilities(6000, rng)
        frac = (samples < 0.30).mean()
        assert 0.40 <= frac <= 0.60  # the paper's "50% below 0.3"

    def test_mixture_has_stable_tail(self, rng):
        samples = sample_availabilities(6000, rng)
        assert (samples > 0.85).mean() > 0.05

    def test_samples_strictly_inside_unit_interval(self, rng):
        samples = sample_availabilities(1000, rng)
        assert samples.min() > 0.0
        assert samples.max() < 1.0

    def test_paper_dimensions_default(self):
        config = OvernetTraceConfig()
        assert config.hosts == 1442
        assert config.epochs == 504
        assert config.epoch_seconds == 1200.0
        assert config.horizon == pytest.approx(7 * 86400.0)

    def test_generated_trace_statistics(self):
        config = OvernetTraceConfig(hosts=400, epochs=120)
        trace = generate_overnet_trace(config=config, seed=5)
        summary = summarize_trace(trace)
        assert summary.node_count == 400
        assert 0.25 <= summary.mean_availability <= 0.45
        # Online population should be roughly hosts * mean availability.
        expected = summary.mean_availability * 400
        assert summary.mean_online_population == pytest.approx(expected, rel=0.35)

    def test_deterministic_with_seed(self):
        config = OvernetTraceConfig(hosts=50, epochs=30)
        t1 = generate_overnet_trace(config=config, seed=9)
        t2 = generate_overnet_trace(config=config, seed=9)
        m1, _ = t1.to_matrix(1200.0)
        m2, _ = t2.to_matrix(1200.0)
        assert (m1 == m2).all()

    def test_seed_changes_output(self):
        config = OvernetTraceConfig(hosts=50, epochs=30)
        m1, _ = generate_overnet_trace(config=config, seed=1).to_matrix(1200.0)
        m2, _ = generate_overnet_trace(config=config, seed=2).to_matrix(1200.0)
        assert (m1 != m2).any()

    def test_custom_node_keys(self):
        config = OvernetTraceConfig(hosts=10, epochs=10)
        keys = [f"host-{i}" for i in range(10)]
        trace = generate_overnet_trace(node_keys=keys, config=config, seed=0)
        assert trace.nodes == tuple(keys)

    def test_key_count_mismatch_rejected(self):
        config = OvernetTraceConfig(hosts=10, epochs=10)
        with pytest.raises(ValueError):
            generate_overnet_trace(node_keys=["a"], config=config, seed=0)

    def test_rng_and_seed_mutually_exclusive(self, rng):
        config = OvernetTraceConfig(hosts=10, epochs=10)
        with pytest.raises(ValueError):
            generate_overnet_trace(config=config, rng=rng, seed=1)
