"""Public API surface checks: imports, exports, version, and the
README quickstart path."""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.churn",
    "repro.scenarios",
    "repro.monitor",
    "repro.overlays",
    "repro.ops",
    "repro.attacks",
    "repro.experiments",
    "repro.util",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_top_level_has_orchestrator(self):
        from repro import AvmemSimulation, SimulationSettings

        assert callable(AvmemSimulation)
        assert callable(SimulationSettings)

    def test_no_duplicate_exports(self):
        for package in PACKAGES:
            module = importlib.import_module(package)
            assert len(module.__all__) == len(set(module.__all__)), package


class TestReadmeQuickstartPath:
    """The exact call sequence the README shows must work."""

    def test_quickstart_sequence(self):
        from repro import AvmemSimulation, SimulationSettings

        sim = AvmemSimulation(
            SimulationSettings(hosts=60, epochs=24, seed=7, protocols="off")
        )
        sim.setup(warmup=12600.0, settle=0.0)
        rec = sim.run_anycast(
            (0.5, 1.0), initiator_band="mid", policy="retry-greedy"
        )
        assert rec.status is not None
        mc = sim.run_multicast(0.3, initiator_band="high", mode="flood")
        assert mc.reliability() == mc.reliability() or True  # NaN-safe read
        assert mc.spam_ratio() is not None or True
