"""Unit tests for the AVMON availability-monitoring overlay."""

import numpy as np
import pytest

from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace
from repro.core.ids import make_node_ids
from repro.monitor.avmon import AvmonConfig, AvmonService, MonitorRecord
from repro.monitor.coarse_view import GlobalSampleView
from repro.sim.engine import Simulator


@pytest.fixture
def avmon_setup(rng):
    ids = make_node_ids(150)
    config = OvernetTraceConfig(hosts=150, epochs=60)
    trace = generate_overnet_trace(node_keys=ids, config=config, seed=11)
    sim = Simulator()
    coarse = GlobalSampleView(sim, ids, view_size=20, rng=rng, presence=trace)
    service = AvmonService(
        sim,
        trace,
        ids,
        coarse,
        n_star=60.0,
        config=AvmonConfig(monitors_per_node=10, ping_period=120.0, discovery_period=120.0),
        rng=rng,
    )
    return sim, trace, ids, service


class TestMonitorSelection:
    def test_consistent(self, avmon_setup):
        _, _, ids, service = avmon_setup
        for x in ids[:10]:
            for z in ids[10:20]:
                assert service.should_monitor(z, x) == service.should_monitor(z, x)

    def test_never_self_monitor(self, avmon_setup):
        _, _, ids, service = avmon_setup
        assert not any(service.should_monitor(x, x) for x in ids)

    def test_expected_monitor_count(self, avmon_setup):
        _, _, ids, service = avmon_setup
        counts = [len(service.monitors_of(x)) for x in ids]
        # K=10, N*=60, population 150 -> expected 150*(10/60) = 25.
        assert np.mean(counts) == pytest.approx(25.0, rel=0.25)

    def test_directed_relation(self, avmon_setup):
        _, _, ids, service = avmon_setup
        asymmetries = sum(
            service.should_monitor(a, b) != service.should_monitor(b, a)
            for a in ids[:20]
            for b in ids[20:40]
        )
        assert asymmetries > 0


class TestMeasurement:
    def test_estimates_converge_to_availability(self, avmon_setup):
        sim, trace, ids, service = avmon_setup
        sim.run_until(40000.0)
        errors = []
        for node in ids:
            estimate = service.query(node)
            # Compare against the windowed truth over the measured period.
            truth = trace.availability(node, sim.now)
            if service.discovered_monitor_count(node) >= 3:
                errors.append(abs(estimate - truth))
        assert errors, "no node had enough discovered monitors"
        assert float(np.mean(errors)) < 0.15

    def test_query_unknown_raises(self, avmon_setup):
        _, _, _, service = avmon_setup
        with pytest.raises(KeyError):
            service.query(make_node_ids(200)[199])

    def test_query_without_measurements_is_prior(self, avmon_setup):
        _, _, ids, service = avmon_setup
        assert service.query(ids[0]) == 0.5  # nothing measured yet

    def test_ping_counting(self, avmon_setup):
        sim, _, _, service = avmon_setup
        sim.run_until(5000.0)
        assert service.ping_count > 0

    def test_stop_halts_pinging(self, avmon_setup):
        sim, _, _, service = avmon_setup
        sim.run_until(5000.0)
        service.stop()
        count = service.ping_count
        sim.run_until(10000.0)
        assert service.ping_count == count


class TestMonitorRecord:
    def test_estimate_fraction(self):
        record = MonitorRecord()
        assert record.estimate is None
        record.observe(True)
        record.observe(True)
        record.observe(False)
        assert record.estimate == pytest.approx(2.0 / 3.0)
        assert record.pings_sent == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AvmonConfig(monitors_per_node=0)
        with pytest.raises(ValueError):
            AvmonConfig(ping_period=0.0)


class TestQueryArray:
    """The batched query API (scalar/batch parity is the contract)."""

    def test_parity_with_scalar_query(self, avmon_setup):
        sim, _, ids, service = avmon_setup
        sim.run_until(3600.0 * 6)  # let discovery + pings accumulate
        batch = service.query_array(ids)
        scalar = np.array([service.query(node) for node in ids])
        np.testing.assert_allclose(batch, scalar)
        # At least some nodes should have real measurements by now.
        assert (batch != 0.5).any()

    def test_unknown_node_raises(self, avmon_setup):
        _, _, ids, service = avmon_setup
        stranger = make_node_ids(len(ids) + 1)[-1]
        with pytest.raises(KeyError):
            service.query_array([ids[0], stranger])

    def test_unmeasured_nodes_answer_the_prior(self, avmon_setup):
        _, _, ids, service = avmon_setup
        # No time has passed: nobody has pinged anybody.
        np.testing.assert_allclose(service.query_array(ids[:7]), 0.5)

    def test_cached_view_uses_the_batch_path(self, avmon_setup):
        from repro.monitor.cache import CachedAvailabilityView

        sim, _, ids, service = avmon_setup
        sim.run_until(3600.0 * 6)
        view = CachedAvailabilityView(service, sim)
        values = view.fetch_array(ids[:25])
        np.testing.assert_allclose(
            values, [service.query(node) for node in ids[:25]]
        )
        # The batch lands in the cache (folded lazily on first read).
        assert view.fetch_count == 25
        for node, value in zip(ids[:25], values):
            assert view.get(node) == pytest.approx(value)
