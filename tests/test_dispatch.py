"""Tests for the batched network-dispatch layer.

The load-bearing property is **batched-vs-per-hop equivalence**: the
cohort path (vectorized latency draws, one batched arrival-instant
presence query, one simulator event per arrival-time cohort) must be
behaviourally indistinguishable from the preserved one-event-per-message
path — same rng stream consumption, same delivery times and handler
order, same accounting totals, and (end to end) identical operation
records on identically-seeded simulations across forwarding policies and
multicast modes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.ids import make_node_ids
from repro.ops.plan import OperationItem, OperationPlan, OperationTiming
from repro.ops.spec import TargetSpec
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LogNormalLatency, UniformLatency
from repro.sim.network import DropReason, Network
from repro.simulation import AvmemSimulation, SimulationSettings


# ----------------------------------------------------------------------
# Latency models: vectorized draws == sequential scalar draws
# ----------------------------------------------------------------------
class TestSampleArray:
    MODELS = (
        ConstantLatency(0.05),
        UniformLatency(0.020, 0.080),
        LogNormalLatency(median=0.045, sigma=0.5),
    )

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_scalar_stream(self, model, seed, n):
        """n batched draws consume the rng exactly like n scalar draws."""
        batch = model.sample_array(np.random.default_rng(seed), n)
        scalar_rng = np.random.default_rng(seed)
        scalars = [model.sample(scalar_rng) for _ in range(n)]
        np.testing.assert_array_equal(batch, np.array(scalars))

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_stream_position_after_batch(self, model):
        """After a batch draw, the stream continues where scalar draws
        would have left it — cohorts of different sizes interleave with
        singleton sends without perturbing later draws."""
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        model.sample_array(a, 5)
        for _ in range(5):
            model.sample(b)
        assert model.sample(a) == model.sample(b)

    def test_constant_consumes_no_randomness(self):
        rng = np.random.default_rng(3)
        state = rng.bit_generator.state
        ConstantLatency(0.1).sample_array(rng, 16)
        assert rng.bit_generator.state == state

    def test_positive_and_sized(self):
        rng = np.random.default_rng(0)
        for model in self.MODELS:
            draws = model.sample_array(rng, 32)
            assert draws.shape == (32,)
            assert (draws > 0).all()


# ----------------------------------------------------------------------
# send_batch semantics
# ----------------------------------------------------------------------
class ScriptedPresence:
    """Presence oracle driven by explicit (node -> [(start, end)]) windows."""

    def __init__(self, windows):
        self.windows = windows

    def is_online(self, node, time):
        return any(start <= time < end for start, end in self.windows.get(node, []))


def recording_network(sim, latency, presence=None, batched=True, nodes=("a", "b", "c", "d"),
                      batch_threshold=1):
    # batch_threshold=1 forces even tiny cohorts through the vector path
    # (the production default routes sub-dozen cohorts through the
    # scalar loop purely for speed).
    net = Network(sim, latency=latency, presence=presence, batched=batched,
                  batch_threshold=batch_threshold, rng=np.random.default_rng(42))
    inbox = []
    for node in nodes:
        net.attach(node, lambda env: inbox.append((env.dst, env.delivered_at)))
    return net, inbox


class TestSendBatch:
    def test_one_event_per_arrival_cohort(self, sim):
        """Equal latencies collapse the whole cohort into one event."""
        net, inbox = recording_network(sim, ConstantLatency(0.05))
        assert net.send_batch("a", ["b", "c", "d"], "x") == 3
        before = sim.events_processed
        sim.run()
        assert sim.events_processed - before == 1  # one cohort event
        assert inbox == [("b", 0.05), ("c", 0.05), ("d", 0.05)]

    def test_distinct_latencies_deliver_at_own_instants(self, sim):
        net, inbox = recording_network(sim, UniformLatency(0.02, 0.08))
        net.send_batch("a", ["b", "c", "d"], "x")
        sim.run()
        assert len(inbox) == 3
        times = [t for _, t in inbox]
        assert times == sorted(times)  # events fire in arrival order
        assert len(set(times)) == 3

    def test_offline_sender_draws_nothing(self, sim):
        presence = ScriptedPresence({"b": [(0, 100)], "c": [(0, 100)]})
        net, inbox = recording_network(sim, UniformLatency(), presence=presence)
        state = net.rng.bit_generator.state
        assert net.send_batch("a", ["b", "c"], "x") == 0
        assert net.rng.bit_generator.state == state  # rng untouched
        assert net.stats.sent == 0
        assert net.stats.dropped[DropReason.SRC_OFFLINE] == 2
        sim.run()
        assert inbox == []

    def test_offline_destination_dropped_without_event(self, sim):
        presence = ScriptedPresence({"a": [(0, 100)], "b": [(0, 100)], "c": []})
        net, inbox = recording_network(sim, ConstantLatency(0.05), presence=presence)
        assert net.send_batch("a", ["b", "c"], "x") == 2
        assert net.stats.dropped[DropReason.DST_OFFLINE] == 1
        sim.run()
        assert inbox == [("b", 0.05)]

    def test_destination_going_offline_mid_flight(self, sim):
        """Presence is evaluated at the arrival instant, not send time."""
        presence = ScriptedPresence({"a": [(0, 100)], "b": [(0.0, 0.02)]})
        net, inbox = recording_network(sim, ConstantLatency(0.05), presence=presence)
        net.send_batch("a", ["b"], "x")  # b online now, offline at 0.05
        sim.run()
        assert inbox == []
        assert net.stats.dropped[DropReason.DST_OFFLINE] == 1

    def test_detached_mid_flight_drops_at_delivery(self, sim):
        net, inbox = recording_network(sim, ConstantLatency(0.05))
        net.send_batch("a", ["b"], "x")
        net.detach("b")
        sim.run()
        assert inbox == []
        assert net.stats.dropped[DropReason.NO_HANDLER] == 1

    def test_empty_batch_is_noop(self, sim):
        net, _ = recording_network(sim, UniformLatency())
        assert net.send_batch("a", [], "x") == 0
        assert net.stats.sent == 0

    @pytest.mark.parametrize("batch_threshold", [1, Network.DEFAULT_BATCH_THRESHOLD])
    def test_cohort_vs_singleton_stats_parity(self, batch_threshold):
        """Identically-seeded batched and per-hop networks produce the
        same accounting totals, delivery order, and delivery times —
        whether cohorts take the vector path (threshold 1) or mix vector
        and scalar dispatch (the default threshold)."""
        windows = {
            "a": [(0, 100)], "b": [(0, 100)],
            "c": [(0.0, 0.03)],  # will be offline at most arrivals
            "d": [(0, 100)],
        }
        runs = []
        for batched in (True, False):
            sim = Simulator()
            net, inbox = recording_network(
                sim, UniformLatency(0.02, 0.08),
                presence=ScriptedPresence(windows), batched=batched,
                batch_threshold=batch_threshold,
            )
            for size in (3, 1, 2, 3, 3, 1, 3, 2, 3, 3):  # straddles any threshold
                net.send_batch("a", ["b", "c", "d"][:size], "payload")
            net.send("a", "b", "single")  # singleton sends interleave fine
            sim.run()
            runs.append((net.stats.snapshot(), inbox))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]


# ----------------------------------------------------------------------
# ChurnTrace batched presence
# ----------------------------------------------------------------------
intervals_strategy = st.lists(
    st.tuples(st.floats(0.0, 900.0), st.floats(0.0, 100.0)).map(
        lambda p: (p[0], p[0] + p[1])
    ),
    max_size=5,
)


class TestTraceBatchPresence:
    @given(
        interval_lists=st.lists(intervals_strategy, min_size=1, max_size=8),
        times=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=16),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_presence(self, interval_lists, times, data):
        ids = make_node_ids(len(interval_lists))
        trace = ChurnTrace(
            {node: NodeSchedule(iv) for node, iv in zip(ids, interval_lists)},
            horizon=1001.0,
        )
        nodes = [
            ids[data.draw(st.integers(0, len(ids) - 1))] for _ in times
        ]
        batch = trace.is_online_array(nodes, np.array(times))
        scalar = [trace.is_online(node, t) for node, t in zip(nodes, times)]
        assert batch.tolist() == scalar

    def test_scalar_time_broadcasts(self):
        ids = make_node_ids(3)
        trace = ChurnTrace(
            {ids[0]: NodeSchedule([(0, 10)]), ids[1]: NodeSchedule([]),
             ids[2]: NodeSchedule([(5, 20)])},
            horizon=30.0,
        )
        got = trace.is_online_array(ids, 7.0)
        assert got.tolist() == [True, False, True]

    def test_unknown_node_raises(self):
        ids = make_node_ids(2)
        trace = ChurnTrace({ids[0]: NodeSchedule([(0, 10)])}, horizon=30.0)
        with pytest.raises(KeyError):
            trace.is_online_array([ids[1]], 1.0)

    def test_network_falls_back_for_unknown_nodes(self):
        """The network's batched presence helper degrades to the scalar
        protocol (False for unknowns) instead of propagating KeyError."""
        ids = make_node_ids(2)
        trace = ChurnTrace({ids[0]: NodeSchedule([(0, 10)])}, horizon=30.0)
        net = Network(Simulator(), presence=trace)
        got = net.online_array([ids[0], ids[1]])
        assert got.tolist() == [True, False]


# ----------------------------------------------------------------------
# End-to-end record parity: batched dispatch vs the per-hop path
# ----------------------------------------------------------------------
def build_sim(seed: int, dispatch: str) -> AvmemSimulation:
    simulation = AvmemSimulation(
        SimulationSettings(
            hosts=70, epochs=24, seed=seed, dispatch=dispatch,
            protocols="refresh-only",
        )
    )
    # Force every cohort through the vector path: at 70 hosts the fan-out
    # cohorts are small and the production thresholds would route them to
    # the scalar loops, sidestepping the code under test.
    simulation.network.batch_threshold = 1
    simulation.engine.GOSSIP_COLUMNAR_MIN = 0
    simulation.setup(warmup=7200.0, settle=600.0)
    return simulation


def parity_plan(policy: str, mode: str) -> OperationPlan:
    # Launches are aimed just before the trace's 1200 s epoch boundaries
    # (setup ends on one), so in-flight messages, ack timeouts, and
    # gossip rounds straddle churn events — the drop/retry paths are
    # part of what must stay identical across dispatch modes.
    anycasts = OperationItem(
        kind="anycast", target=TargetSpec.range(0.5, 0.9), count=8,
        policy=policy,
        timing=OperationTiming(mode="interval", spacing=299.95, phase=1199.8),
    )
    multicasts = OperationItem(
        kind="multicast", target=TargetSpec.range(0.4, 0.8), count=3,
        band="high", mode=mode, policy=policy,
        timing=OperationTiming(mode="interval", spacing=1200.0, phase=1199.9),
    )
    return OperationPlan(items=(anycasts, multicasts), settle=40.0)


def anycast_fields(record):
    return (
        record.op_id, record.initiator, record.status, record.hops,
        record.latency, record.data_messages, record.ack_messages,
        record.retries_used, record.started_at, record.delivered_at,
        record.delivery_node,
    )


def multicast_fields(record):
    return (
        record.op_id, record.initiator, record.mode,
        sorted(n.endpoint for n in record.eligible),
        sorted((n.endpoint, t) for n, t in record.deliveries.items()),
        sorted((n.endpoint, t) for n, t in record.spam),
        record.data_messages, record.duplicate_receptions,
        anycast_fields(record.anycast),
    )


def record_fields(record):
    if record is None:
        return None
    if hasattr(record, "deliveries"):
        return multicast_fields(record)
    return anycast_fields(record)


class TestDispatchRecordParity:
    @given(
        seed=st.integers(0, 2**16),
        policy=st.sampled_from(["greedy", "retry-greedy", "anneal"]),
        mode=st.sampled_from(["flood", "gossip"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_batched_matches_per_hop(self, seed, policy, mode):
        """A seeded plan executed through batched dispatch is
        record-identical (status, hops, transmissions, latencies,
        multicast tallies) to the preserved per-hop path."""
        batched = build_sim(seed, "batch")
        per_hop = build_sim(seed, "per-hop")
        plan = parity_plan(policy, mode)
        got = batched.ops.execute(plan)
        want = per_hop.ops.execute(plan)
        assert len(got.records) == len(want.records)
        for new, old in zip(got.records, want.records):
            assert record_fields(new) == record_fields(old)
        # The network-level accounting totals agree too.
        assert batched.network.stats.snapshot() == per_hop.network.stats.snapshot()

    def test_eligible_nodes_scalar_batch_parity(self):
        """The vectorized eligibility snapshot equals the scalar loop's
        set at several instants and targets."""
        simulation = build_sim(5, "batch")
        engine = simulation.engine
        assert engine.truth_eligible is not None
        for target in (
            TargetSpec.range(0.2, 0.5),
            TargetSpec.range(0.6, 0.95),
            TargetSpec.threshold(0.5),
        ):
            batch = engine._eligible_nodes(target)
            snapshot_fn = engine.truth_eligible
            engine.truth_eligible = None
            try:
                scalar = engine._eligible_nodes(target)
            finally:
                engine.truth_eligible = snapshot_fn
            assert batch == scalar

    def test_band_candidates_match_scalar_shape(self):
        """The row-space band candidate list equals the scalar filter
        over online_ids, in the same order."""
        simulation = build_sim(6, "batch")
        for band in ("low", "mid", "high"):
            from repro.ops.spec import InitiatorBand

            want = [
                node
                for node in simulation.online_ids()
                if InitiatorBand.contains(band, simulation.true_availability(node))
            ]
            assert simulation.band_initiator_candidates(band) == want


# ----------------------------------------------------------------------
# send_many: heterogeneous wavefront cohorts
# ----------------------------------------------------------------------
class TestSendMany:
    ITEMS = [
        ("a", "b", "p0"),
        ("ghost", "c", "p1"),  # offline sender: wired False, no draw
        ("b", "d", "p2"),
        ("c", "gone", "p3"),  # destination never online: dropped at send
        ("d", "a", "p4"),
    ]
    WINDOWS = {
        "a": [(0, 100)], "b": [(0, 100)], "c": [(0, 100)], "d": [(0, 100)],
    }

    def run_one(self, batched, batch_threshold=1):
        sim = Simulator()
        net, inbox = recording_network(
            sim, UniformLatency(0.02, 0.08),
            presence=ScriptedPresence(self.WINDOWS), batched=batched,
            batch_threshold=batch_threshold,
        )
        wired = net.send_many(self.ITEMS)
        state = net.rng.bit_generator.state
        sim.run()
        return wired, net.stats.snapshot(), inbox, state

    def test_matches_sequential_sends(self):
        """One send_many call is indistinguishable from a loop of scalar
        sends: same wired flags, accounting totals, delivery order and
        instants, and the same latency-stream position afterwards."""
        got = self.run_one(batched=True)
        want = self.run_one(batched=False)
        assert got == want

    def test_threshold_routes_small_cohorts_to_scalar(self):
        got = self.run_one(batched=True, batch_threshold=50)
        want = self.run_one(batched=False)
        assert got == want

    def test_offline_sender_consumes_no_latency_draws(self, sim):
        """An offline sender's item draws nothing — the stream position
        afterwards equals two scalar draws, not three."""
        net, _ = recording_network(
            sim, UniformLatency(0.02, 0.08),
            presence=ScriptedPresence(self.WINDOWS),
        )
        reference = np.random.default_rng(42)  # recording_network's seed
        UniformLatency(0.02, 0.08).sample_array(reference, 2)
        wired = net.send_many([("a", "b", 1), ("ghost", "c", 2), ("b", "d", 3)])
        assert wired == [True, False, True]
        assert net.stats.sent == 2
        assert net.stats.dropped[DropReason.SRC_OFFLINE] == 1
        assert net.rng.bit_generator.state == reference.bit_generator.state

    def test_heterogeneous_payloads_deliver_to_own_destinations(self, sim):
        net, inbox = recording_network(sim, ConstantLatency(0.05))
        payloads = {}
        for node in ("a", "b", "c", "d"):
            net.detach(node)
            net.attach(node, lambda env, n=node: payloads.setdefault(n, env.payload))
        net.send_many([("a", "b", "for-b"), ("b", "c", "for-c"), ("c", "d", "for-d")])
        before = sim.events_processed
        sim.run()
        # Equal arrival instants collapse the whole wavefront into one
        # cohort event.
        assert sim.events_processed - before == 1
        assert payloads == {"b": "for-b", "c": "for-c", "d": "for-d"}

    def test_empty_is_noop(self, sim):
        net, _ = recording_network(sim, UniformLatency())
        assert net.send_many([]) == []
        assert net.stats.sent == 0


# ----------------------------------------------------------------------
# Dispatch-layer duplicate suppression
# ----------------------------------------------------------------------
class TestSendBatchSuppressing:
    def test_suppressed_delivers_without_event(self, sim):
        """A suppressed destination is credited delivered but no
        simulator event is scheduled for it."""
        net, inbox = recording_network(sim, ConstantLatency(0.05))
        on_wire, dup = net.send_batch_suppressing(
            "a", ["b", "c"], "x", np.array([False, True])
        )
        assert (on_wire, dup) == (2, 1)
        assert net.stats.sent == 2
        assert net.stats.delivered == 1  # the suppressed one, pre-credited
        sim.run()
        assert inbox == [("b", 0.05)]  # only the unsuppressed traveled
        assert net.stats.delivered == 2

    def test_suppressed_offline_destination_counts_as_drop(self, sim):
        """Suppression still answers presence at the arrival instant: an
        offline duplicate is a DST_OFFLINE drop, not a reception."""
        windows = {"a": [(0, 100)], "b": [(0, 100)], "c": [(0.0, 0.02)]}
        net, inbox = recording_network(
            sim, ConstantLatency(0.05), presence=ScriptedPresence(windows)
        )
        on_wire, dup = net.send_batch_suppressing(
            "a", ["b", "c"], "x", np.array([False, True])
        )
        assert (on_wire, dup) == (2, 0)
        assert net.stats.dropped[DropReason.DST_OFFLINE] == 1
        sim.run()
        assert inbox == [("b", 0.05)]

    def test_suppressed_detached_destination_is_no_handler(self, sim):
        net, _ = recording_network(sim, ConstantLatency(0.05), nodes=("a", "b"))
        on_wire, dup = net.send_batch_suppressing(
            "a", ["b", "zz"], "x", np.array([False, True])
        )
        assert (on_wire, dup) == (2, 0)
        assert net.stats.dropped[DropReason.NO_HANDLER] == 1

    def test_latency_stream_unchanged_by_suppression(self):
        """The suppression mask must not perturb the latency draws — the
        stream position matches an unsuppressed batch of equal size."""
        states = []
        for suppress in (None, np.array([False, True, True])):
            sim = Simulator()
            net, _ = recording_network(sim, UniformLatency(0.02, 0.08))
            net.send_batch_suppressing("a", ["b", "c", "d"], "x", suppress)
            states.append(net.rng.bit_generator.state)
        assert states[0] == states[1]

    def test_scalar_fallback_suppresses_nothing(self, sim):
        """Below the batch threshold (or with batching off) duplicates
        travel and are accounted at reception, exactly per-hop."""
        net, inbox = recording_network(
            sim, ConstantLatency(0.05), batch_threshold=50
        )
        on_wire, dup = net.send_batch_suppressing(
            "a", ["b", "c"], "x", np.array([True, True])
        )
        assert (on_wire, dup) == (2, 0)
        sim.run()
        assert len(inbox) == 2


# ----------------------------------------------------------------------
# Columnar candidate ordering: identical lists, identical rng streams
# ----------------------------------------------------------------------
class TestColumnarOrderingStreamParity:
    """The likeliest silent parity killer is the ``"ops"`` stream
    diverging between the per-entry and columnar ordering paths — one
    extra (or missing) draw desynchronizes every later decision.  These
    property tests pin both the outputs and the exact generator state
    after ordering, for all three policies — including the annealing
    acceptance-probability draw."""

    @pytest.mark.parametrize("policy_name", ["greedy", "retry-greedy", "anneal"])
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(0, 24),
        ttl=st.integers(1, 12),
        lo=st.floats(0.1, 0.6),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_arrays_match_entries_and_stream_position(
        self, policy_name, seed, n, ttl, lo, data
    ):
        from repro.core.membership import MemberEntry, SliverKind
        from repro.ops.anycast import make_policy

        ids = make_node_ids(n) if n else []
        # Coarse availability grid so equal distances (the tiebreak-draw
        # path) actually occur.
        avs = [
            data.draw(st.sampled_from([0.05, 0.2, lo, 0.7, 0.7, 0.9]))
            for _ in range(n)
        ]
        excluded = [i for i in range(n) if data.draw(st.booleans())]
        target = TargetSpec.range(lo, min(lo + 0.2, 1.0))
        entries = [
            MemberEntry(node, av, SliverKind.HORIZONTAL, 0.0, 0.0)
            for node, av in zip(ids, avs)
        ]
        nodes_arr = np.empty(n, dtype=object)
        nodes_arr[:] = ids
        avs_arr = np.array(avs, dtype=float)
        digests = np.fromiter((i.digest64 for i in ids), dtype=np.uint64, count=n)
        exclude_digests = np.fromiter(
            (ids[i].digest64 for i in excluded), dtype=np.uint64, count=len(excluded)
        )
        policy = make_policy(policy_name)
        rng_entries = np.random.default_rng(seed)
        rng_arrays = np.random.default_rng(seed)
        want = policy.order_candidates(
            entries, target, ttl, rng_entries, {ids[i] for i in excluded}
        )
        got = policy.order_candidates_arrays(
            nodes_arr, avs_arr, target, ttl, rng_arrays, exclude_digests, digests
        )
        assert got == want
        assert rng_arrays.bit_generator.state == rng_entries.bit_generator.state

    def test_annealing_acceptance_draw_happens_iff_scalar_draws(self):
        """Deterministic spot check of the annealing decision sequence:
        no draw for in-range bests or single candidates, exactly one
        acceptance draw (plus maybe a swap pick) otherwise."""
        from repro.core.membership import MemberEntry, SliverKind
        from repro.ops.anycast import AnnealingPolicy

        ids = make_node_ids(3)
        target = TargetSpec.range(0.8, 0.9)
        policy = AnnealingPolicy()

        def order(avs, seed=5):
            n = len(avs)
            nodes_arr = np.empty(n, dtype=object)
            nodes_arr[:] = ids[:n]
            digests = np.fromiter(
                (i.digest64 for i in ids[:n]), dtype=np.uint64, count=n
            )
            rng = np.random.default_rng(seed)
            out = policy.order_candidates_arrays(
                nodes_arr, np.array(avs), target, 6, rng,
                np.zeros(0, dtype=np.uint64), digests,
            )
            return out, rng

        # All outside the range: the acceptance draw runs -> stream moved
        # beyond the two tiebreak draws.
        _, rng_explore = order([0.1, 0.2])
        reference = np.random.default_rng(5)
        reference.random(2)  # tiebreaks only
        assert rng_explore.bit_generator.state != reference.bit_generator.state
        # Greedy best in range: no acceptance draw (shuffle of the single
        # in-range candidate + one outside tiebreak draw).
        _, rng_exploit = order([0.85, 0.2])
        reference = np.random.default_rng(5)
        reference.shuffle([ids[0]])
        reference.random(1)
        assert rng_exploit.bit_generator.state == reference.bit_generator.state


# ----------------------------------------------------------------------
# Wavefront cohorts: end-to-end record parity across policies × timings
# ----------------------------------------------------------------------
WAVEFRONT_TIMINGS = {
    # All launch offsets phase just before the trace's 1200 s churn
    # boundaries (setup ends on one) so in-flight hops and 0.5 s ack
    # timeouts straddle presence flips.
    "batch": OperationTiming(mode="batch", phase=1199.8),
    "interval": OperationTiming(mode="interval", spacing=299.95, phase=1199.8),
    "poisson": OperationTiming(mode="poisson", rate=1.0 / 240.0, phase=1199.8),
}


def wavefront_plan(policy: str, timing_name: str, mode: str) -> OperationPlan:
    timing = WAVEFRONT_TIMINGS[timing_name]
    anycasts = OperationItem(
        kind="anycast", target=TargetSpec.range(0.5, 0.9), count=10,
        policy=policy, timing=timing,
    )
    # High-band initiators chasing a low target: long walks with ack
    # timeouts and retries interleaved into the same wavefronts.
    retried = OperationItem(
        kind="anycast", target=TargetSpec.range(0.05, 0.25), count=6,
        band="high", policy="retry-greedy", retry=2, timing=timing,
    )
    # Multicasts share the launch instants so stage-2 floods mix with
    # anycast forwards inside one cohort flush.
    multicasts = OperationItem(
        kind="multicast", target=TargetSpec.range(0.4, 0.8), count=2,
        band="high", mode=mode, policy=policy, timing=timing,
    )
    return OperationPlan(items=(anycasts, retried, multicasts), settle=40.0)


class TestWavefrontRecordParity:
    """The tentpole correctness bar: wavefront-batched dispatch (launch
    cohorts held by the runner, delivery cohorts bracketed by the network
    hooks, columnar candidate ordering, dispatch-layer duplicate
    suppression) is record-identical to per-hop dispatch on seeded runs."""

    @given(
        seed=st.integers(0, 2**16),
        policy=st.sampled_from(["greedy", "retry-greedy", "anneal"]),
        timing_name=st.sampled_from(sorted(WAVEFRONT_TIMINGS)),
        mode=st.sampled_from(["flood", "gossip"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_wavefront_matches_per_hop(self, seed, policy, timing_name, mode):
        batched = build_sim(seed, "batch")
        per_hop = build_sim(seed, "per-hop")
        plan = wavefront_plan(policy, timing_name, mode)
        got = batched.ops.execute(plan)
        want = per_hop.ops.execute(plan)
        assert len(got.records) == len(want.records)
        for new, old in zip(got.records, want.records):
            assert record_fields(new) == record_fields(old)
        assert batched.network.stats.snapshot() == per_hop.network.stats.snapshot()
        # Reception bookkeeping agrees even though batch mode suppresses
        # duplicate hand-offs at the dispatch layer.
        assert batched.engine._mcast_seen == per_hop.engine._mcast_seen


# ----------------------------------------------------------------------
# Duplicate suppression: accounting parity, fewer handler invocations
# ----------------------------------------------------------------------
def run_suppression_probe(dispatch: str, mode: str, seed: int = 11):
    """Execute a duplicate-heavy multicast plan with every handler
    wrapped to count :class:`MulticastMessage` hand-offs."""
    from repro.ops.messages import MulticastMessage

    simulation = build_sim(seed, dispatch)
    counts = {"multicast_envelopes": 0}
    for node in list(simulation.network._handlers):
        original = simulation.network._handlers[node]

        def wrapped(envelope, _original=original):
            if isinstance(envelope.payload, MulticastMessage):
                counts["multicast_envelopes"] += 1
            _original(envelope)

        simulation.network._handlers[node] = wrapped
    plan = OperationPlan(
        items=(
            OperationItem(
                kind="multicast", target=TargetSpec.range(0.4, 0.9), count=2,
                band="high", mode=mode,
                timing=OperationTiming(mode="batch", phase=1199.8),
            ),
        ),
        settle=40.0,
    )
    execution = simulation.ops.execute(plan)
    return simulation, execution, counts["multicast_envelopes"]


class TestDuplicateSuppression:
    """Seen-at-send duplicates are absorbed at the dispatch layer — the
    envelope never becomes a simulator event — while every tally
    (``duplicate_receptions``, ``_mcast_seen``, network stats) stays
    identical to per-hop dispatch, where duplicates travel and are
    counted at reception.  The strict handler-invocation inequality
    fails on the pre-suppression tree (both modes delivered every
    duplicate envelope)."""

    @pytest.mark.parametrize("mode", ["flood", "gossip"])
    def test_suppression_preserves_tallies_and_skips_handoffs(self, mode):
        batched, got, batched_envelopes = run_suppression_probe("batch", mode)
        per_hop, want, per_hop_envelopes = run_suppression_probe("per-hop", mode)
        for new, old in zip(got.records, want.records):
            assert record_fields(new) == record_fields(old)
        duplicates = sum(r.duplicate_receptions for r in want.launched)
        assert duplicates > 0  # the plan actually provokes duplicates
        # _mcast_seen growth is identical: suppression consults the seen
        # set but reception membership is unchanged.
        assert batched.engine._mcast_seen == per_hop.engine._mcast_seen
        assert batched.network.stats.snapshot() == per_hop.network.stats.snapshot()
        # The point of the seen-mask: duplicate envelopes seen at send
        # time never reach a handler in batch mode.
        assert batched_envelopes < per_hop_envelopes
        assert per_hop_envelopes - batched_envelopes <= duplicates


# ----------------------------------------------------------------------
# Status races survive the vector path (PR 5 fix under the seen-mask move)
# ----------------------------------------------------------------------
class TestStatusRaceUnderVectorDispatch:
    """The DELIVERY_OVERRIDABLE fix (a premature NO_NEIGHBOR /
    RETRY_EXPIRED verdict yields to a genuine delivery by a copy still
    in flight) must survive wavefront dispatch: singleton flushes route
    through ``send_many`` and acks/data through the batched presence
    path once ``batch_threshold`` is 1."""

    @staticmethod
    def vector_system(avs, rng, latency, **kwargs):
        from test_ops_engine import build_system

        sim, network, nodes, engine, ids = build_system(
            avs, rng=rng, latency=latency, **kwargs
        )
        assert network.batched
        network.batch_threshold = 1  # force every cohort down the vector path
        return sim, network, nodes, engine, ids

    def test_delivery_overrides_no_neighbor(self, rng):
        from repro.ops.results import AnycastStatus

        sim, network, nodes, engine, ids = self.vector_system(
            [0.5, 0.9], rng, ConstantLatency(1.0)
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy"
        )
        sim.run_until(0.75)
        assert record.status == AnycastStatus.NO_NEIGHBOR
        sim.run_until(5.0)
        assert record.status == AnycastStatus.DELIVERED
        assert record.delivery_node == ids[1]
        assert record.delivered_at == pytest.approx(1.0)
        assert record.retries_used == 0

    def test_delivery_overrides_retry_expired(self, rng):
        from repro.ops.results import AnycastStatus

        sim, network, nodes, engine, ids = self.vector_system(
            [0.5, 0.9, 0.8, 0.7], rng, ConstantLatency(1.2), offline={2, 3}
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=1
        )
        sim.run_until(1.1)
        assert record.status == AnycastStatus.RETRY_EXPIRED
        sim.run_until(5.0)
        assert record.status == AnycastStatus.DELIVERED
        assert record.retries_used == 1

    def test_first_delivery_still_wins(self, rng):
        from repro.ops.results import AnycastStatus

        sim, network, nodes, engine, ids = self.vector_system(
            [0.5, 0.9, 0.9], rng, ConstantLatency(1.2)
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=3
        )
        sim.run_until(5.0)
        assert record.status == AnycastStatus.DELIVERED
        assert record.delivered_at == pytest.approx(1.2)
