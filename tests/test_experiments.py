"""Tests for the experiment harness, snapshot analytics, and reports."""

import numpy as np
import pytest

from repro.experiments.harness import SCALES, build_simulation, get_scale
from repro.experiments.report import FigureResult, format_cdf_summary, format_table
from repro.experiments.snapshot import take_snapshot


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"full", "medium", "small"}
        assert get_scale("full").hosts == 1442
        assert get_scale("full").runs * get_scale("full").messages_per_run == 250

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_total_messages(self):
        tier = get_scale("small")
        assert tier.total_messages == tier.runs * tier.messages_per_run


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]

    def test_figure_result_rows(self):
        result = FigureResult("figX", "test", headers=["k", "v"])
        result.add_row("a", 1.0)
        with pytest.raises(ValueError):
            result.add_row("too", "many", "values")
        assert result.row_dicts() == [{"k": "a", "v": 1.0}]

    def test_render_contains_everything(self):
        result = FigureResult("figX", "Title here", headers=["k"])
        result.add_row("value")
        result.add_note("a note")
        text = result.render()
        assert "figX" in text and "Title here" in text
        assert "value" in text and "a note" in text

    def test_format_cdf_summary(self):
        text = format_cdf_summary([1.0, 2.0, 3.0, 4.0])
        assert "p50=" in text and "max=4" in text
        assert format_cdf_summary([]) == "no samples"

    def test_nan_rendering(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text


class TestSnapshot:
    def test_snapshot_covers_online_population(self, small_simulation):
        snapshot = take_snapshot(small_simulation)
        assert snapshot.online_count == len(small_simulation.online_ids())
        assert set(snapshot.hs_size) == set(snapshot.nodes)
        assert set(snapshot.incoming_vs) == set(snapshot.nodes)

    def test_online_sizes_bounded_by_totals(self, small_simulation):
        snapshot = take_snapshot(small_simulation)
        for node in snapshot.nodes:
            assert snapshot.hs_online[node] <= snapshot.hs_size[node]
            assert snapshot.vs_online[node] <= snapshot.vs_size[node]

    def test_histogram_sums_to_population(self, small_simulation):
        snapshot = take_snapshot(small_simulation)
        counts, edges = snapshot.availability_histogram()
        assert counts.sum() == snapshot.online_count
        assert len(edges) == 11

    def test_band_means_cover_populated_bands(self, small_simulation):
        snapshot = take_snapshot(small_simulation)
        hs = snapshot.hs_by_band()
        counts, edges = snapshot.availability_histogram()
        populated = {round(float(edges[i]), 10) for i, c in enumerate(counts) if c}
        assert set(hs) == populated

    def test_hs_candidates_symmetry(self, small_simulation):
        """Candidate counts count online nodes within ±ε, excluding self."""
        snapshot = take_snapshot(small_simulation)
        node = snapshot.nodes[0]
        av = snapshot.availability[node]
        manual = sum(
            1
            for other in snapshot.nodes
            if other != node
            and abs(snapshot.availability[other] - av)
            < small_simulation.predicate.epsilon
        )
        assert snapshot.hs_candidates[node] == manual

    def test_scaling_exponent_finite(self, small_simulation):
        snapshot = take_snapshot(small_simulation)
        slope = snapshot.hs_scaling_exponent()
        assert slope == slope  # not NaN for a populated snapshot

    def test_incoming_vs_totals(self, small_simulation):
        snapshot = take_snapshot(small_simulation)
        total_incoming = sum(snapshot.incoming_vs.values())
        online = set(snapshot.nodes)
        manual = sum(
            1
            for node in snapshot.nodes
            for entry in small_simulation.nodes[node].lists.vertical
            if entry.node in online
        )
        assert total_incoming == manual


class TestBuildSimulation:
    def test_build_without_setup(self):
        simulation = build_simulation(scale="small", seed=1, setup=False)
        assert simulation.sim.now == 0.0

    def test_override_forwarding(self):
        simulation = build_simulation(
            scale="small", seed=1, setup=False, predicate_kind="random"
        )
        assert simulation.settings.predicate_kind == "random"
