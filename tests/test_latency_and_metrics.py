"""Unit tests for latency models and the metrics registry."""

import numpy as np
import pytest

from repro.sim.latency import (
    PAPER_HOP_LATENCY,
    ConstantLatency,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.metrics import Counter, Distribution, MetricsRegistry, TimeSeries


class TestLatencyModels:
    def test_constant(self, rng):
        model = ConstantLatency(0.1)
        assert model.sample(rng) == 0.1
        assert model.mean() == 0.1

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)

    def test_uniform_bounds(self, rng):
        model = UniformLatency(0.02, 0.08)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(0.02 <= s <= 0.08 for s in samples)
        assert model.mean() == pytest.approx(0.05)

    def test_uniform_mean_empirical(self, rng):
        model = UniformLatency(0.02, 0.08)
        samples = [model.sample(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.05)

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.08, 0.02)

    def test_paper_hop_latency_is_20_to_80_ms(self):
        assert PAPER_HOP_LATENCY.low == pytest.approx(0.020)
        assert PAPER_HOP_LATENCY.high == pytest.approx(0.080)

    def test_lognormal_positive(self, rng):
        model = LogNormalLatency(median=0.045, sigma=0.5)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(s > 0 for s in samples)

    def test_lognormal_median_empirical(self, rng):
        model = LogNormalLatency(median=0.045, sigma=0.5)
        samples = [model.sample(rng) for _ in range(4000)]
        assert np.median(samples) == pytest.approx(0.045, rel=0.1)

    def test_lognormal_mean_above_median(self):
        model = LogNormalLatency(median=0.045, sigma=0.5)
        assert model.mean() > 0.045


class TestCounter:
    def test_increment(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestDistribution:
    def test_basic_stats(self):
        dist = Distribution([1.0, 2.0, 3.0, 4.0])
        assert dist.count == 4
        assert dist.mean() == pytest.approx(2.5)
        assert dist.median() == pytest.approx(2.5)
        assert dist.min() == 1.0
        assert dist.max() == 4.0

    def test_empty_stats_are_nan(self):
        dist = Distribution()
        assert np.isnan(dist.mean())
        assert np.isnan(dist.median())
        assert np.isnan(dist.fraction_below(1.0))

    def test_add_and_extend(self):
        dist = Distribution()
        dist.add(1.0)
        dist.extend([2.0, 3.0])
        assert dist.samples == (1.0, 2.0, 3.0)

    def test_cdf_monotone_ending_at_one(self, rng):
        dist = Distribution(rng.uniform(0, 1, 100))
        xs, ps = dist.cdf()
        assert np.all(np.diff(xs) > 0)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == pytest.approx(1.0)

    def test_fraction_below(self):
        dist = Distribution([1.0, 2.0, 3.0, 4.0])
        assert dist.fraction_below(2.0) == pytest.approx(0.5)
        assert dist.fraction_below(0.5) == 0.0
        assert dist.fraction_below(10.0) == 1.0

    def test_histogram_fixed_range(self):
        dist = Distribution([0.05, 0.15, 0.95])
        counts, edges = dist.histogram(bins=10)
        assert counts.sum() == 3
        assert counts[0] == 1 and counts[1] == 1 and counts[9] == 1

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Distribution([1.0]).quantile(1.5)

    def test_summary_keys(self):
        summary = Distribution([1.0, 2.0]).summary()
        assert set(summary) == {"count", "mean", "median", "p90", "min", "max"}


class TestTimeSeries:
    def test_ordered_append(self):
        series = TimeSeries()
        series.add(0.0, 10.0)
        series.add(1.0, 11.0)
        assert series.count == 2
        assert series.last() == (1.0, 11.0)

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.add(5.0, 1.0)
        with pytest.raises(ValueError):
            series.add(4.0, 1.0)

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()

    def test_as_arrays(self):
        series = TimeSeries()
        series.add(0.0, 1.0)
        series.add(2.0, 3.0)
        times, values = series.as_arrays()
        assert list(times) == [0.0, 2.0]
        assert list(values) == [1.0, 3.0]


class TestRegistry:
    def test_memoizes_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.distribution("d") is registry.distribution("d")
        assert registry.series("s") is registry.series("s")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("sent").increment(3)
        registry.distribution("lat").extend([1.0, 2.0])
        registry.series("pop").add(0.0, 5.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"sent": 3}
        assert snap["distributions"]["lat"]["count"] == 2.0
        assert snap["series"] == {"pop": 1}

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.counter_names() == ("a", "b")
