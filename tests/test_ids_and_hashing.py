"""Unit + property tests for node identifiers and the consistent hashes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    HASH_NAMES,
    DigestPairHash,
    Mix64PairHash,
    make_hash,
)
from repro.core.ids import NodeId, digest_array, make_node_ids


class TestNodeId:
    def test_endpoint_format(self):
        node = NodeId("10.0.0.1", 9000)
        assert node.endpoint == "10.0.0.1:9000"
        assert str(node) == "10.0.0.1:9000"

    def test_equality_and_hashability(self):
        a = NodeId("h", 1)
        b = NodeId("h", 1)
        c = NodeId("h", 2)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_ordering(self):
        assert NodeId("a", 2) < NodeId("b", 1)
        assert NodeId("a", 1) < NodeId("a", 2)

    def test_digest_stable_across_instances(self):
        assert NodeId("x", 5).digest64 == NodeId("x", 5).digest64

    def test_digest_differs_across_nodes(self):
        assert NodeId("x", 5).digest64 != NodeId("x", 6).digest64

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeId("", 1)
        with pytest.raises(ValueError):
            NodeId("h", 0)
        with pytest.raises(ValueError):
            NodeId("h", 70000)

    def test_from_index_unique(self):
        ids = make_node_ids(300)
        assert len(set(ids)) == 300

    def test_from_index_deterministic(self):
        assert NodeId.from_index(77) == NodeId.from_index(77)

    def test_from_index_bounds(self):
        with pytest.raises(ValueError):
            NodeId.from_index(-1)
        with pytest.raises(ValueError):
            NodeId.from_index(1 << 24)

    def test_make_node_ids_validation(self):
        with pytest.raises(ValueError):
            make_node_ids(0)

    def test_digest_array_matches_nodes(self):
        ids = make_node_ids(5)
        arr = digest_array(ids)
        assert arr.dtype == np.uint64
        assert list(arr) == [n.digest64 for n in ids]


class TestHashRegistry:
    def test_all_names_construct(self):
        for name in HASH_NAMES:
            h = make_hash(name)
            assert h.value(NodeId("a", 1), NodeId("b", 2)) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_hash("crc32")


@pytest.mark.parametrize("name", HASH_NAMES)
class TestHashProperties:
    def test_range(self, name):
        h = make_hash(name)
        ids = make_node_ids(40)
        values = [h.value(x, y) for x in ids[:10] for y in ids[10:20]]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_consistency(self, name):
        """Two independent evaluations agree — the verifiability property."""
        h1, h2 = make_hash(name), make_hash(name)
        x, y = NodeId("1.2.3.4", 80), NodeId("5.6.7.8", 443)
        assert h1.value(x, y) == h2.value(x, y)

    def test_directedness(self, name):
        h = make_hash(name)
        ids = make_node_ids(30)
        asymmetric = sum(
            1 for x, y in zip(ids[:15], ids[15:]) if h.value(x, y) != h.value(y, x)
        )
        assert asymmetric >= 14  # essentially always different

    def test_uniformity(self, name):
        h = make_hash(name)
        ids = make_node_ids(60)
        values = [h.value(x, y) for x in ids for y in ids if x != y]
        values = np.array(values)
        assert values.mean() == pytest.approx(0.5, abs=0.03)
        # Decile occupancy roughly even.
        counts, _ = np.histogram(values, bins=10, range=(0, 1))
        assert counts.min() > 0.7 * len(values) / 10


class TestMix64Vectorized:
    def test_matches_scalar(self):
        h = Mix64PairHash()
        ids = make_node_ids(50)
        x = ids[0]
        vector = h.value_many(x, digest_array(ids))
        scalar = np.array([h.value(x, y) for y in ids])
        assert np.allclose(vector, scalar)

    def test_salt_changes_values(self):
        base, salted = Mix64PairHash(), Mix64PairHash(salt=12345)
        x, y = NodeId("a", 1), NodeId("b", 2)
        assert base.value(x, y) != salted.value(x, y)

    def test_salted_vectorized_matches_scalar(self):
        h = Mix64PairHash(salt=99)
        ids = make_node_ids(20)
        vector = h.value_many(ids[0], digest_array(ids))
        scalar = np.array([h.value(ids[0], y) for y in ids])
        assert np.allclose(vector, scalar)

    def test_negative_salt_rejected(self):
        with pytest.raises(ValueError):
            Mix64PairHash(salt=-1)

    def test_supports_vectorized_flag(self):
        assert Mix64PairHash().supports_vectorized
        assert not DigestPairHash("sha1").supports_vectorized

    def test_digest_hash_vectorized_raises(self):
        with pytest.raises(NotImplementedError):
            DigestPairHash("sha1").value_many(NodeId("a", 1), np.array([1], dtype=np.uint64))

    def test_unknown_digest_algorithm_rejected(self):
        with pytest.raises(ValueError):
            DigestPairHash("md4")


@given(host_a=st.integers(0, 1000), host_b=st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_hash_consistency_property(host_a, host_b):
    """H(x, y) is a pure function of the two identifiers (hypothesis)."""
    x, y = NodeId.from_index(host_a), NodeId.from_index(host_b)
    for name in ("mix64", "sha1"):
        h = make_hash(name)
        v1, v2 = h.value(x, y), h.value(x, y)
        assert v1 == v2
        assert 0.0 <= v1 < 1.0
