"""Hypothesis property tests on the core data structures.

Invariants that every other layer builds on: schedule/uptime algebra,
membership-table consistency, and event-loop ordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.ids import make_node_ids
from repro.core.membership import MembershipLists
from repro.core.predicates import SliverKind
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# NodeSchedule
# ----------------------------------------------------------------------
interval_list = st.lists(
    st.tuples(st.floats(0, 1000), st.floats(0, 1000)).map(
        lambda p: (min(p), max(p))
    ),
    min_size=0,
    max_size=12,
)


@given(intervals=interval_list, probe=st.floats(0, 1000))
@settings(max_examples=80, deadline=None)
def test_schedule_presence_matches_intervals(intervals, probe):
    schedule = NodeSchedule(intervals)
    manual = any(start <= probe < end for start, end in schedule.intervals)
    assert schedule.is_online(probe) == manual


@given(intervals=interval_list)
@settings(max_examples=80, deadline=None)
def test_schedule_normalization_invariants(intervals):
    schedule = NodeSchedule(intervals)
    normalized = schedule.intervals
    # Sorted, disjoint, non-degenerate.
    for (s1, e1), (s2, e2) in zip(normalized, normalized[1:]):
        assert e1 < s2
    for start, end in normalized:
        assert end > start


@given(
    intervals=interval_list,
    t1=st.floats(0, 1000),
    t2=st.floats(0, 1000),
)
@settings(max_examples=80, deadline=None)
def test_uptime_additivity(intervals, t1, t2):
    """uptime(0, b) == uptime(0, a) + uptime(a, b) for a <= b."""
    a, b = sorted((t1, t2))
    schedule = NodeSchedule(intervals)
    total = schedule.uptime(b)
    split = schedule.uptime(a) + schedule.uptime(b, since=a)
    assert total == pytest.approx(split, abs=1e-6)
    # Uptime never exceeds elapsed time.
    assert 0.0 <= schedule.uptime(b) <= b + 1e-9


@given(intervals=interval_list, probe=st.floats(0, 999))
@settings(max_examples=60, deadline=None)
def test_next_transition_flips_presence(intervals, probe):
    schedule = NodeSchedule(intervals)
    nxt = schedule.next_transition(probe)
    if nxt is not None:
        assert nxt > probe
        before = schedule.is_online((probe + nxt) / 2 if nxt > probe else probe)
        after = schedule.is_online(nxt)
        assert before != after


# ----------------------------------------------------------------------
# MembershipLists
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["upsert_h", "upsert_v", "remove"]),
        st.integers(1, 12),  # node index (0 is the owner)
        st.floats(0, 1),
    ),
    min_size=0,
    max_size=40,
)


@given(ops=ops_strategy)
@settings(max_examples=80, deadline=None)
def test_membership_table_invariants(ops):
    ids = make_node_ids(13)
    table = MembershipLists(ids[0])
    model = {}
    for op, index, availability in ops:
        node = ids[index]
        if op == "remove":
            assert table.remove(node) == (node in model)
            model.pop(node, None)
        else:
            kind = SliverKind.HORIZONTAL if op == "upsert_h" else SliverKind.VERTICAL
            table.upsert(node, availability, kind, now=0.0)
            model[node] = kind
    # The table agrees with a plain dict model.
    assert table.total_count == len(model)
    assert {e.node for e in table.horizontal} == {
        n for n, k in model.items() if k is SliverKind.HORIZONTAL
    }
    assert {e.node for e in table.vertical} == {
        n for n, k in model.items() if k is SliverKind.VERTICAL
    }
    # A node is never in both slivers.
    assert not ({e.node for e in table.horizontal} & {e.node for e in table.vertical})


# ----------------------------------------------------------------------
# Simulator ordering
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(0, 100), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_simulator_executes_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # The clock equals each event's scheduled delay at firing time.
    for fired_at, delay in fired:
        assert fired_at == pytest.approx(delay)


@given(
    delays=st.lists(st.floats(0, 100), min_size=2, max_size=20),
    cutoff=st.floats(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_run_until_is_a_prefix(delays, cutoff):
    """run_until(t) fires exactly the events with time <= t."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run_until(cutoff)
    assert sorted(fired) == sorted(d for d in delays if d <= cutoff)
