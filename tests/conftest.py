"""Shared fixtures for the AVMEM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_population(rng):
    """(descriptors, pdf, predicate) for a 120-node synthetic population."""
    ids = make_node_ids(120)
    availabilities = rng.uniform(0.02, 0.98, size=120)
    pdf = AvailabilityPdf.from_samples(availabilities)
    descriptors = [
        NodeDescriptor(node, float(av)) for node, av in zip(ids, availabilities)
    ]
    predicate = paper_predicate(pdf)
    return descriptors, pdf, predicate


@pytest.fixture(scope="session")
def small_simulation():
    """A warmed-up small-scale simulation shared by integration tests.

    Session-scoped because setup costs seconds; tests that mutate state
    (run operations) consume trace time monotonically, which the 32-hour
    small-scale horizon comfortably absorbs.
    """
    from repro.experiments.harness import build_simulation

    return build_simulation(scale="small", seed=42)
