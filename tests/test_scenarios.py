"""Tests for the declarative scenario subsystem.

Every registered scenario must compile to a structurally sound timeline
whose batched answers match ``ChurnTrace`` scalar answers entry for
entry and whose realized long-run availability stays calibrated to the
spec's sampled targets; the batched oracle/cache path must agree with
the scalar path; and the harness/CLI plumbing must run every scenario
end to end.
"""

import json

import numpy as np
import pytest

from repro.churn.loader import TRACE_MODELS, generate_model_trace
from repro.cli import main
from repro.core.ids import make_node_ids
from repro.experiments.harness import build_simulation, run_scenario
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.oracle import OracleAvailability
from repro.scenarios import (
    SCENARIOS,
    ChurnModelSpec,
    PerturbationSpec,
    PopulationSpec,
    ScenarioSpec,
    get_scenario,
    register,
    scenario_names,
)
from repro.sim.engine import Simulator

COMPILE_HOSTS = 80
# A full diurnal period (72 epochs = 24 h at 20-minute epochs): shorter
# horizons cannot average out day/night modulation, so calibration
# checks would measure the trace's truncation instead of the generator.
COMPILE_EPOCHS = 72


@pytest.fixture(scope="module")
def compiled_all():
    """Every registered scenario compiled once at a small scale."""
    return {
        name: get_scenario(name).compile(
            hosts=COMPILE_HOSTS, epochs=COMPILE_EPOCHS, seed=7
        )
        for name in scenario_names()
    }


class TestRegistry:
    def test_catalogue_size_and_required_names(self):
        names = scenario_names()
        assert len(names) >= 7
        for required in (
            "overnet-replay", "weibull-lifetimes", "pareto-heavy-tail",
            "diurnal", "flash-crowd", "blackout", "availability-ramp",
        ):
            assert required in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("no-such-workload")

    def test_register_refuses_silent_overwrite(self):
        spec = SCENARIOS["diurnal"]
        with pytest.raises(ValueError, match="already registered"):
            register(spec)
        assert register(spec, replace=True) is spec

    def test_specs_validate_inputs(self):
        with pytest.raises(ValueError):
            ChurnModelSpec(model="zipf")
        with pytest.raises(ValueError):
            PopulationSpec(distribution="bimodal")
        with pytest.raises(ValueError):
            PerturbationSpec(kind="earthquake", at=0.5, duration=0.1, fraction=0.5)
        with pytest.raises(ValueError):
            get_scenario("diurnal").compile(hosts=0, epochs=10)


class TestCompiledTimelines:
    def test_sessions_disjoint_sorted_and_in_horizon(self, compiled_all):
        for name, compiled in compiled_all.items():
            compiled.timeline.validate()
            assert compiled.timeline.n_nodes == COMPILE_HOSTS
            assert compiled.targets.shape == (COMPILE_HOSTS,)

    def test_timeline_matches_trace_entry_for_entry(self, compiled_all):
        rng = np.random.default_rng(3)
        for name, compiled in compiled_all.items():
            trace = compiled.to_trace()
            nodes = list(trace.nodes)
            horizon = trace.horizon
            times = np.concatenate([
                rng.uniform(0.0, horizon, 6), [0.0, horizon / 2, horizon]
            ])
            for t in times:
                assert (
                    trace.online_mask(t).tolist()
                    == [trace.schedule(k).is_online(t) for k in nodes]
                ), f"{name}: presence diverged at t={t}"
                batch = trace.availability_array(nodes, t)
                scalar = [trace.schedule(k).availability(t) for k in nodes]
                assert np.allclose(batch, scalar, rtol=0.0, atol=1e-9), (
                    f"{name}: availability diverged at t={t}"
                )

    def test_long_run_availability_calibrated(self, compiled_all):
        for name, compiled in compiled_all.items():
            tolerance = compiled.spec.calibration_tolerance
            if tolerance is None:
                continue
            err = compiled.calibration_error()
            assert err <= tolerance, (
                f"{name}: mean lifetime availability off target by {err:.3f} "
                f"(tolerance {tolerance})"
            )

    def test_flash_crowd_swells_online_population(self):
        spec = get_scenario("flash-crowd")
        base = ScenarioSpec(
            name="flash-crowd-base",
            description="same churn, no events",
            churn=spec.churn,
            population=spec.population,
        )
        compiled = spec.compile(hosts=150, epochs=60, seed=11)
        baseline = base.compile(hosts=150, epochs=60, seed=11)
        event = spec.perturbations[0]
        mid_event = (event.at + event.duration / 2) * compiled.timeline.horizon
        swelled = compiled.timeline.online_count(mid_event)
        assert swelled >= baseline.timeline.online_count(mid_event)
        # At least `fraction` of the population is forced online.
        assert swelled >= int(event.fraction * 150)

    def test_blackout_empties_affected_population(self):
        spec = get_scenario("blackout")
        compiled = spec.compile(hosts=150, epochs=60, seed=11)
        base = ScenarioSpec(
            name="blackout-base",
            description="same churn, no events",
            churn=spec.churn,
            population=spec.population,
        ).compile(hosts=150, epochs=60, seed=11)
        event = spec.perturbations[0]
        mid_event = (event.at + event.duration / 2) * compiled.timeline.horizon
        assert (
            compiled.timeline.online_count(mid_event)
            <= base.timeline.online_count(mid_event)
        )
        # Outside the outage the schedules are untouched.
        before = 0.5 * event.at * compiled.timeline.horizon
        assert compiled.timeline.online_count(before) == base.timeline.online_count(
            before
        )


class TestOracleBatchParity:
    @pytest.fixture
    def trace_and_sim(self):
        compiled = get_scenario("weibull-lifetimes").compile(
            hosts=60, epochs=36, seed=5
        )
        trace = compiled.to_trace(make_node_ids(60))
        sim = Simulator()
        sim.run_until(0.7 * trace.horizon)
        return trace, sim

    def test_query_array_matches_scalar_query(self, trace_and_sim):
        trace, sim = trace_and_sim
        oracle = OracleAvailability(
            trace, sim, window=86400.0, noise_std=0.05, quantization=0.01, seed=9
        )
        nodes = list(trace.nodes)
        batch = oracle.query_array(nodes)
        scalar = np.array([oracle.query(node) for node in nodes])
        assert np.allclose(batch, scalar, rtol=0.0, atol=1e-9)
        assert batch.min() >= 0.0 and batch.max() <= 1.0

    def test_query_array_unknown_node_raises(self, trace_and_sim):
        trace, sim = trace_and_sim
        oracle = OracleAvailability(trace, sim)
        stranger = make_node_ids(61)[-1]
        with pytest.raises(KeyError):
            oracle.query_array([stranger])

    def test_fetch_array_uses_batch_and_fills_cache(self, trace_and_sim):
        trace, sim = trace_and_sim
        oracle = OracleAvailability(trace, sim, noise_std=0.02, seed=4)
        view = CachedAvailabilityView(oracle, sim)
        nodes = list(trace.nodes)[:10]
        values = view.fetch_array(nodes)
        assert view.fetch_count == 10
        for node, value in zip(nodes, values):
            assert view.get(node) == pytest.approx(float(value))
            assert view.staleness(node) == 0.0

    def test_fetch_array_falls_back_without_query_array(self, trace_and_sim):
        trace, sim = trace_and_sim

        class ScalarOnly:
            def __init__(self):
                self.calls = 0

            def query(self, node):
                self.calls += 1
                return 0.5

        service = ScalarOnly()
        view = CachedAvailabilityView(service, sim)
        nodes = list(trace.nodes)[:7]
        values = view.fetch_array(nodes)
        assert service.calls == 7
        assert values.tolist() == [0.5] * 7
        assert len(view) == 7

    def test_scalar_fetch_after_batch_keeps_latest_value(self, trace_and_sim):
        """A scalar fetch after a deferred batch must not be clobbered
        when the batch folds in."""
        trace, sim = trace_and_sim
        oracle = OracleAvailability(trace, sim, noise_std=0.0)
        view = CachedAvailabilityView(oracle, sim)
        node = list(trace.nodes)[0]
        view.fetch_array([node])
        fresh = view.fetch(node)  # folds the batch, then overwrites
        assert view.get(node) == pytest.approx(fresh)


class TestHarnessAndCli:
    def test_build_simulation_with_scenario(self):
        simulation = build_simulation(
            scale="small", seed=3, scenario="pareto-heavy-tail", setup=False
        )
        assert simulation.scenario_spec is get_scenario("pareto-heavy-tail")
        assert simulation.trace.node_count == 220

    def test_build_simulation_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_simulation(scale="small", scenario="nope", setup=False)

    def test_run_scenario_reports_metrics(self):
        report = run_scenario("flash-crowd", scale="small", seed=1)
        assert report.scenario == "flash-crowd"
        assert report.hosts == 220
        assert report.online_at_start > 0
        assert report.anycasts > 0
        assert 0.0 <= report.anycast_success_rate <= 1.0
        payload = report.as_dict()
        assert payload["scenario"] == "flash-crowd"
        # Strictly valid JSON: undefined metrics must be None, never the
        # bare NaN token strict parsers reject.
        encoded = json.dumps(payload, allow_nan=False)
        assert json.loads(encoded) == payload

    def test_report_scrubs_nan_metrics(self):
        from repro.experiments.harness import ScenarioRunReport

        report = ScenarioRunReport(
            scenario="x", scale="small", seed=0, hosts=10,
            online_at_start=5, mean_lifetime_availability=0.5,
        )
        payload = report.as_dict()
        assert payload["anycast_mean_hops"] is None
        assert payload["anycast_success_rate"] is None
        json.dumps(payload, allow_nan=False)

    def test_cli_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_cli_scenario_run_with_json(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main([
            "scenario", "run", "blackout", "--scale", "small", "--seed", "2",
            "--json", str(out_path),
        ]) == 0
        assert "anycast_success_rate" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["scenario"] == "blackout"

    def test_cli_trace_model_dispatch(self, tmp_path, capsys):
        for model in ("weibull", "diurnal"):
            out = tmp_path / f"{model}.npz"
            assert main([
                "trace", "--hosts", "30", "--epochs", "12",
                "--model", model, "--out", str(out),
            ]) == 0
            assert out.exists()
        assert "mean_availability" in capsys.readouterr().out

    def test_cli_trace_summary_describes_persisted_file(self, tmp_path, capsys):
        """The printed stats must match the written file: persistence
        samples at epoch midpoints, which quantizes continuous-model
        sessions, so summarizing the pre-sampling trace would lie."""
        from repro.churn.loader import load_trace_npz
        from repro.churn.stats import summarize_trace

        out = tmp_path / "pareto.npz"
        assert main([
            "trace", "--hosts", "40", "--epochs", "16", "--seed", "1",
            "--model", "pareto", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "epoch resolution" in printed
        reloaded = summarize_trace(load_trace_npz(out))
        assert f"total_sessions: {reloaded.total_sessions:.4g}" in printed
        assert f"mean_availability: {reloaded.mean_availability:.4g}" in printed

    def test_cli_trace_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["trace", "--model", "quantum", "--out", "x.txt"])

    def test_generate_model_trace_models(self):
        assert set(TRACE_MODELS) == {"overnet", "weibull", "pareto", "diurnal"}
        trace = generate_model_trace("pareto", hosts=25, epochs=10, seed=3)
        assert trace.node_count == 25
        with pytest.raises(ValueError, match="unknown trace model"):
            generate_model_trace("quantum", hosts=10, epochs=5)
