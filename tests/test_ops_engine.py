"""Integration tests for the operation engine over a controlled system.

Presence is scripted (no stochastic churn) so delivery outcomes are
deterministic up to seeded tie-breaking.
"""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AnycastConfig, AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, random_overlay_predicate
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView
from repro.monitor.oracle import OracleAvailability
from repro.ops.engine import OperationEngine
from repro.ops.results import AnycastStatus
from repro.ops.spec import TargetSpec
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


def build_system(availabilities, offline=(), rng=None, config=None, windows=None,
                 latency=None):
    """A deterministic system: node i has the given fixed availability;
    nodes in ``offline`` are never online.  ``windows`` optionally gives
    node i an explicit online-interval list (overriding ``offline``);
    ``latency`` overrides the default 50 ms constant latency."""
    rng = rng if rng is not None else np.random.default_rng(7)
    ids = make_node_ids(len(availabilities))
    horizon = 1e6
    schedules = {}
    for i, node in enumerate(ids):
        if windows is not None and i in windows:
            schedules[node] = NodeSchedule(windows[i])
        elif i in offline:
            schedules[node] = NodeSchedule([])
        else:
            # Continuously online; availability conveyed via the PDF and
            # per-node descriptor, with presence decoupled for control.
            schedules[node] = NodeSchedule([(0.0, horizon)])
    trace = ChurnTrace(schedules, horizon=horizon)
    sim = Simulator()
    latency = latency if latency is not None else ConstantLatency(0.05)
    network = Network(sim, latency=latency, presence=trace, rng=rng)
    pdf = AvailabilityPdf.from_samples(availabilities, online_weighted=False)
    # A complete overlay (f = 1 everywhere): these tests exercise engine
    # mechanics, and full neighbor knowledge makes outcomes deterministic.
    predicate = random_overlay_predicate(pdf, probability=1.0)
    config = config if config is not None else AvmemConfig()
    coarse = GlobalSampleView(sim, ids, len(ids) - 1, rng=rng, presence=trace,
                              stale_fraction=0.0)

    class FixedAvailability:
        """Availability service answering the configured static values."""

        def __init__(self):
            self.values = {node: float(a) for node, a in zip(ids, availabilities)}

        def query(self, node):
            return self.values[node]

    service = FixedAvailability()
    nodes = {}
    for node_id in ids:
        cache = CachedAvailabilityView(service, sim)
        nodes[node_id] = AvmemNode(
            node_id, sim, network, predicate, config, cache, coarse, rng=rng
        )
    engine = OperationEngine(
        sim, network, nodes, config,
        truth_availability=service.query, rng=rng,
    )
    # Bootstrap everyone against the full population.
    descriptors = [NodeDescriptor(n, service.query(n)) for n in ids]
    for node_id, node in nodes.items():
        node.bootstrap_from([d for d in descriptors if d.node != node_id])
    return sim, network, nodes, engine, ids


class TestAnycastDelivery:
    def test_initiator_in_range_succeeds_immediately(self, rng):
        sim, _, nodes, engine, ids = build_system([0.9, 0.5, 0.3], rng=rng)
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95))
        assert record.delivered
        assert record.hops == 0
        assert record.delivery_node == ids[0]

    def test_one_hop_delivery(self, rng):
        avs = [0.5] + [0.9] * 10 + [0.3] * 10
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95))
        sim.run_until(sim.now + 10.0)
        record.finalize()
        assert record.delivered
        assert record.hops == 1

    def test_threshold_anycast(self, rng):
        avs = [0.5] + [0.95] * 5 + [0.2] * 10
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.anycast(ids[0], TargetSpec.threshold(0.9))
        sim.run_until(sim.now + 10.0)
        record.finalize()
        assert record.delivered

    def test_offline_initiator(self, rng):
        sim, _, nodes, engine, ids = build_system([0.5, 0.9], offline={0}, rng=rng)
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95))
        assert record.status == AnycastStatus.INITIATOR_OFFLINE

    def test_no_neighbor_failure(self, rng):
        """An isolated selector (empty HS) cannot forward."""
        avs = [0.5] + [0.9] * 10  # nobody within ±0.1 of the initiator
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        nodes[ids[0]].lists.clear()
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95), selector="hs")
        sim.run_until(sim.now + 10.0)
        record.finalize()
        assert record.status == AnycastStatus.NO_NEIGHBOR

    def test_ttl_expiry(self, rng):
        """TTL 1 with no in-range believed node within one hop."""
        avs = [0.5] * 12  # nobody anywhere near the target
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95), ttl=1)
        sim.run_until(sim.now + 10.0)
        record.finalize()
        assert record.status == AnycastStatus.TTL_EXPIRED

    def test_greedy_lost_on_offline_next_hop(self, rng):
        """Greedy silently loses the message if the only in-range node is
        offline; retried greedy recovers via another candidate."""
        avs = [0.5, 0.9, 0.9, 0.3, 0.35, 0.45, 0.55]
        # ids[1] offline (the two 0.9 nodes are the only in-range options).
        sim, _, nodes, engine, ids = build_system(avs, offline={1}, rng=rng)
        outcomes = set()
        for _ in range(12):
            record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95), policy="greedy")
            sim.run_until(sim.now + 5.0)
            record.finalize()
            outcomes.add(record.status)
        assert AnycastStatus.LOST in outcomes  # sometimes picked the dead node

    def test_retried_greedy_masks_offline_candidates(self, rng):
        avs = [0.5, 0.9, 0.9, 0.9, 0.3]
        sim, _, nodes, engine, ids = build_system(avs, offline={1, 2}, rng=rng)
        delivered = 0
        for _ in range(10):
            record = engine.anycast(
                ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=5
            )
            sim.run_until(sim.now + 10.0)
            record.finalize()
            delivered += record.delivered
        assert delivered == 10  # ids[3] always reachable after retries

    def test_retry_budget_exhausts(self, rng):
        avs = [0.5, 0.9, 0.9, 0.9, 0.9]
        sim, _, nodes, engine, ids = build_system(avs, offline={1, 2, 3, 4}, rng=rng)
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=2
        )
        sim.run_until(sim.now + 20.0)
        record.finalize()
        assert record.status == AnycastStatus.RETRY_EXPIRED
        assert record.retries_used == 2

    def test_acks_counted(self, rng):
        avs = [0.5] + [0.9] * 6
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy"
        )
        sim.run_until(sim.now + 10.0)
        assert record.ack_messages >= 1

    def test_anycast_avoids_path_loops(self, rng):
        avs = [0.5, 0.55, 0.52, 0.9]
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95), ttl=10)
        sim.run_until(sim.now + 10.0)
        record.finalize()
        assert record.delivered


class TestMulticast:
    def test_flood_reaches_all_in_range(self, rng):
        avs = [0.5] + [0.9] * 8 + [0.2] * 6
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="flood")
        sim.run_until(sim.now + 20.0)
        assert record.reliability() == pytest.approx(1.0)
        assert record.spam_ratio() == 0.0

    def test_flood_no_duplicate_deliveries(self, rng):
        avs = [0.5] + [0.9] * 8
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="flood")
        sim.run_until(sim.now + 20.0)
        # Every in-range node delivered exactly once, duplicates suppressed.
        assert len(record.deliveries) == 8
        assert record.duplicate_receptions > 0  # flooding does duplicate sends

    def test_gossip_reaches_most_in_range(self, rng):
        avs = [0.5] + [0.9] * 12
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="gossip")
        sim.run_until(sim.now + 30.0)
        assert record.reliability() >= 0.75

    def test_gossip_latency_exceeds_flood(self, rng):
        avs = [0.5] + [0.9] * 12
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        flood = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="flood")
        sim.run_until(sim.now + 30.0)
        gossip = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="gossip")
        sim.run_until(sim.now + 30.0)
        assert gossip.worst_latency() > flood.worst_latency()

    def test_initiator_in_range_roots_stage2(self, rng):
        avs = [0.9] + [0.9] * 5 + [0.2] * 4
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        record = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="flood")
        sim.run_until(sim.now + 20.0)
        assert ids[0] in record.deliveries
        assert record.reliability() == pytest.approx(1.0)

    def test_eligible_snapshot_excludes_offline(self, rng):
        avs = [0.5, 0.9, 0.9, 0.9]
        sim, _, nodes, engine, ids = build_system(avs, offline={3}, rng=rng)
        record = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95))
        assert ids[3] not in record.eligible
        assert record.eligible == {ids[1], ids[2]}

    def test_invalid_mode_rejected(self, rng):
        sim, _, nodes, engine, ids = build_system([0.5, 0.9], rng=rng)
        with pytest.raises(ValueError):
            engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="broadcast")

    def test_spam_from_stale_caches(self, rng):
        """A neighbor cached as in-range whose availability dropped
        produces spam when flooded to."""
        avs = [0.5, 0.9, 0.9, 0.88]
        sim, _, nodes, engine, ids = build_system(avs, rng=rng)
        # Manually corrupt truth: pretend ids[3] availability fell to 0.5,
        # while every node's *cached* entry still says 0.88.
        engine.truth_availability = (
            lambda n: 0.5 if n == ids[3] else nodes[n].availability._service.query(n)
        )
        record = engine.multicast(ids[0], TargetSpec.range(0.85, 0.95), mode="flood")
        sim.run_until(sim.now + 20.0)
        assert any(node == ids[3] for node, _ in record.spam)


class TestVerificationIntegration:
    def test_verify_inbound_rejects_non_neighbors(self, rng):
        """With verification on, a forged sender gets dropped."""
        avs = [0.5] + [0.9] * 6
        sim, network, nodes, engine, ids = build_system(avs, rng=rng)
        engine.verify_inbound = True
        # Messages between genuine neighbors still flow: run an anycast.
        record = engine.anycast(ids[0], TargetSpec.range(0.85, 0.95))
        sim.run_until(sim.now + 10.0)
        record.finalize()
        # With static availabilities and fresh caches nothing is rejected.
        assert engine.rejected_inbound == 0
        assert record.delivered


class TestFinalize:
    def test_finalize_sweeps_all_pending(self, rng):
        avs = [0.5, 0.9, 0.9]
        sim, _, nodes, engine, ids = build_system(avs, offline={1, 2}, rng=rng)
        records = [
            engine.anycast(ids[0], TargetSpec.range(0.85, 0.95)) for _ in range(5)
        ]
        sim.run_until(sim.now + 10.0)
        engine.finalize()
        assert all(r.status != AnycastStatus.PENDING for r in records)


class TestRetryAccounting:
    """Regression tests pinning the §3.2 retry semantics: ``retry=R``
    budgets R *retries* after the initial transmission — R+1 transmission
    attempts total before RETRY_EXPIRED — and ``retries_used`` counts
    only retries actually performed (the expiring timeout is not one)."""

    @pytest.mark.parametrize("retry", [1, 2, 3])
    def test_exact_transmission_attempts(self, retry, rng):
        avs = [0.5] + [0.9] * 5
        sim, network, nodes, engine, ids = build_system(
            avs, offline={1, 2, 3, 4, 5}, rng=rng
        )
        sent_before = network.stats.sent
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=retry
        )
        sim.run_until(sim.now + 60.0)
        record.finalize()
        assert record.status == AnycastStatus.RETRY_EXPIRED
        # Initial transmission + exactly `retry` retries hit the wire.
        assert network.stats.sent - sent_before == retry + 1
        assert record.retries_used == retry

    def test_expiring_timeout_counts_no_retry(self, rng):
        """retry=1: one retry happens, the second timeout only expires."""
        avs = [0.5, 0.9, 0.9]
        sim, network, nodes, engine, ids = build_system(avs, offline={1, 2}, rng=rng)
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=1
        )
        sim.run_until(sim.now + 60.0)
        record.finalize()
        assert record.status == AnycastStatus.RETRY_EXPIRED
        assert record.retries_used == 1

    def test_candidate_exhaustion_counts_no_retry(self, rng):
        """With budget left but no candidate to retry with, the timeout
        transmits nothing — it must report NO_NEIGHBOR without counting
        a phantom retry."""
        avs = [0.5, 0.9, 0.9]
        sim, network, nodes, engine, ids = build_system(avs, offline={1, 2}, rng=rng)
        sent_before = network.stats.sent
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=5
        )
        sim.run_until(sim.now + 60.0)
        record.finalize()
        assert record.status == AnycastStatus.NO_NEIGHBOR
        # Both candidates were tried: initial transmission + one retry.
        assert network.stats.sent - sent_before == 2
        assert record.retries_used == 1


class TestDeliveryStatusRace:
    """Regression tests for the retried-greedy status race: a stale
    in-flight copy that dies first must not suppress a genuine delivery
    by a duplicate that is still traveling (ack lost or slower than the
    ack timeout → the holder re-sends while the original lives on)."""

    def test_delivery_overrides_no_neighbor(self, rng):
        """One candidate, latency (1 s) above the ack timeout (0.5 s):
        the timeout exhausts the candidate list (NO_NEIGHBOR) while the
        original copy is still in flight and then delivers."""
        avs = [0.5, 0.9]
        sim, network, nodes, engine, ids = build_system(
            avs, rng=rng, latency=ConstantLatency(1.0)
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy"
        )
        sim.run_until(0.75)  # past the ack timeout, before the delivery
        assert record.status == AnycastStatus.NO_NEIGHBOR  # the premature verdict
        sim.run_until(5.0)
        assert record.status == AnycastStatus.DELIVERED
        assert record.delivery_node == ids[1]
        assert record.delivered_at == pytest.approx(1.0)
        assert record.hops == 1
        assert record.retries_used == 0  # the expiring timeout transmitted nothing

    def test_delivery_overrides_no_neighbor_with_lost_ack(self, rng):
        """The literal lost-ack shape: the holder goes offline before the
        ack can arrive (the ack is genuinely dropped), yet the data copy
        it had already sent delivers."""
        avs = [0.5, 0.9]
        sim, network, nodes, engine, ids = build_system(
            avs, rng=rng, latency=ConstantLatency(1.0),
            windows={0: [(0.0, 1.5)]},  # holder dies at 1.5; ack would arrive at 2.0
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy"
        )
        sim.run_until(5.0)
        from repro.sim.network import DropReason

        assert network.stats.dropped.get(DropReason.DST_OFFLINE, 0) >= 1  # the ack
        assert record.status == AnycastStatus.DELIVERED
        assert record.delivered_at == pytest.approx(1.0)

    def test_delivery_overrides_retry_expired(self, rng):
        """retry=1 with the fallback candidates offline: the second
        timeout spends the budget (RETRY_EXPIRED) at t=1.0, then the
        original slow copy delivers at t=1.2 and must win."""
        avs = [0.5, 0.9, 0.8, 0.7]
        sim, network, nodes, engine, ids = build_system(
            avs, offline={2, 3}, rng=rng, latency=ConstantLatency(1.2)
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=1
        )
        sim.run_until(1.1)
        assert record.status == AnycastStatus.RETRY_EXPIRED
        sim.run_until(5.0)
        assert record.status == AnycastStatus.DELIVERED
        assert record.retries_used == 1

    def test_first_delivery_still_wins(self, rng):
        """Two live in-range candidates: the retry duplicate delivering
        second must not displace the first delivery."""
        avs = [0.5, 0.9, 0.9]
        sim, network, nodes, engine, ids = build_system(
            avs, rng=rng, latency=ConstantLatency(1.2)
        )
        record = engine.anycast(
            ids[0], TargetSpec.range(0.85, 0.95), policy="retry-greedy", retry=3
        )
        sim.run_until(5.0)
        assert record.status == AnycastStatus.DELIVERED
        # Original sent at t=0 arrives 1.2; the retry copy (sent at the
        # 0.5 s timeout) arrives 1.7 and is a duplicate.
        assert record.delivered_at == pytest.approx(1.2)


class TestPhantomRetryCharge:
    """Regression test: a send attempt from an offline holder puts no
    message on the wire, so it must not arm an ack timeout that later
    charges a retry for the transmission that never happened."""

    def test_failed_send_skips_timeout_and_charge(self, rng):
        from repro.ops.anycast import make_policy
        from repro.ops.engine import _PendingAttempt
        from repro.ops.messages import AnycastMessage
        from repro.ops.results import AnycastRecord

        avs = [0.5, 0.9]
        # The holder is offline during [5.0, 6.4) — the instant the
        # forwarding step runs — and back online before the would-be
        # ack timeout (6.5) fires.
        sim, network, nodes, engine, ids = build_system(
            avs, rng=rng, windows={0: [(0.0, 5.0), (6.4, 1e6)]}
        )
        sim.run_until(6.0)
        target = TargetSpec.range(0.85, 0.95)
        record = AnycastRecord(
            op_id=99, initiator=ids[0], target=target,
            policy="retry-greedy", selector="hs+vs", started_at=sim.now,
        )
        engine.anycasts[99] = record
        engine._policies[99] = make_policy("retry-greedy")
        message = AnycastMessage(
            op_id=99, target=target, ttl=4, retry=2,
            attempt=engine._new_attempt(), origin=ids[0], sender=ids[0],
            path=(ids[0],),
        )
        state = _PendingAttempt(
            record=record, holder=ids[0], base_message=message,
            candidates=[ids[1]], next_index=0, retry_remaining=2,
        )
        sent_before = network.stats.sent
        engine._try_next_candidate(state)
        assert network.stats.sent == sent_before  # nothing hit the wire
        sim.run_until(8.0)  # past the would-be timeout; holder back online
        assert record.retries_used == 0
        assert record.status == AnycastStatus.PENDING  # message died silently
        assert network.stats.sent == sent_before
        assert not any(s.record is record for s in engine._pending.values())


class TestGossipResumption:
    """Regression test for cursor resumption across membership churn:
    the per-(op, node) gossip position is anchored to the last neighbor
    sent to, so list mutations between rounds cannot make the iteration
    skip neighbors that were never served."""

    def test_resumes_after_last_sent_despite_churn(self, rng):
        from repro.core.config import GossipConfig

        config = AvmemConfig(gossip=GossipConfig(fanout=2, rounds=2, period=1.0))
        avs = [0.9] * 6
        sim, _, nodes, engine, ids = build_system(avs, rng=rng, config=config)
        root = ids[0]
        record = engine.multicast(root, TargetSpec.range(0.85, 0.95), mode="gossip")
        # Root's deterministic candidate order is ids[1..5].  Round 1
        # (t=1) sends to ids[1], ids[2].  Before round 2, a refresh-like
        # mutation evicts ids[1] from the root's lists.
        sim.schedule_at(1.5, lambda: nodes[root].lists.remove(ids[1]))
        sim.run_until(10.0)
        state = engine._gossip[(record.op_id, root)]
        # Round 2 must resume right after ids[2] — serving ids[3] and
        # ids[4].  An index-based cursor would resume at position 2 of
        # the shrunken list and skip ids[3] in favor of ids[4], ids[5].
        assert state.sent_to == {ids[1], ids[2], ids[3], ids[4]}

    def test_no_node_skipped_with_enough_rounds(self, rng):
        """With budget to cover everyone, churn must not starve anyone
        still in the lists."""
        from repro.core.config import GossipConfig

        config = AvmemConfig(gossip=GossipConfig(fanout=2, rounds=4, period=1.0))
        avs = [0.9] * 6
        sim, _, nodes, engine, ids = build_system(avs, rng=rng, config=config)
        root = ids[0]
        record = engine.multicast(root, TargetSpec.range(0.85, 0.95), mode="gossip")
        sim.schedule_at(1.5, lambda: nodes[root].lists.remove(ids[1]))
        sim.run_until(10.0)
        state = engine._gossip[(record.op_id, root)]
        # Everyone remaining in the lists (plus the already-served
        # ids[1]) has been sent to exactly once.
        assert state.sent_to == {ids[1], ids[2], ids[3], ids[4], ids[5]}
