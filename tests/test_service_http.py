"""HTTP API: routing, error mapping, concurrency, kill-and-restart.

The in-process tests run a ThreadingHTTPServer on an ephemeral port and
drive it through :class:`~repro.service.client.ServiceClient`.  The
subprocess test is the full durability story: a ``repro serve`` process
is killed mid-session and a fresh process restores the session from the
state directory; its remaining workload must aggregate identically to
an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import make_server, scrub_json
from repro.service.orchestrator import SessionOrchestrator
from repro.service.store import SessionStore

TINY_SETTINGS = {"hosts": 80, "epochs": 12, "seed": 3}
TINY = {"settings": TINY_SETTINGS, "warmup": 4000.0, "settle": 600.0}

PLAN = {
    "items": [
        {
            "kind": "anycast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 4,
            "band": "mid",
            "timing": {"mode": "interval", "spacing": 2.0},
        },
        {
            "kind": "multicast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 1,
            "band": "high",
            "timing": {"mode": "interval", "spacing": 5.0, "phase": 11.0},
        },
    ],
    "settle": 20.0,
    "name": "http-test",
}


@pytest.fixture()
def service(tmp_path):
    """(client, orchestrator) over a live in-process server."""
    store = SessionStore(str(tmp_path / "state"))
    orchestrator = SessionOrchestrator(store)
    server = make_server(orchestrator, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(f"http://{host}:{port}"), orchestrator
    finally:
        server.shutdown()
        server.server_close()


class TestScrub:
    def test_nan_and_inf_to_null(self):
        payload = {"a": float("nan"), "b": [1.0, float("inf")], "c": {"d": 2.5}}
        assert scrub_json(payload) == {"a": None, "b": [1.0, None], "c": {"d": 2.5}}


class TestRoutes:
    def test_healthz(self, service):
        client, __ = service
        assert client.healthz()["ok"] is True

    def test_lifecycle(self, service):
        client, __ = service
        info = client.create_session(id="s1", **TINY)
        assert info["id"] == "s1"
        assert info["now"] == pytest.approx(4000.0)
        assert info["status"] == "live"

        result = client.run_plan("s1", PLAN)
        assert result["rows"] == 5
        assert result["plan_index"] == 0

        advanced = client.advance("s1", 60.0)
        assert advanced["now"] == pytest.approx(result["now"] + 60.0)

        stepped = client.step("s1", 5)
        assert stepped["events"] <= 5

        payload = client.log("s1", by=["kind", "band"])
        assert payload["plans"] == 1
        assert payload["summary"]["operations"] == 5
        assert all("success_rate" in g for g in payload["groups"])

        per_plan = client.log("s1", plan=0)
        assert per_plan["rows"] == 5

        snapshot = client.telemetry("s1")
        assert snapshot["format"] == "avmem-telemetry-v1"
        phases = client.telemetry("s1", phases=True)["phases"]
        assert any(row["phase"].startswith("sim.") for row in phases)

        assert client.evict("s1")["status"] == "checkpointed"
        rows = client.list_sessions()
        assert [(r["id"], r["status"]) for r in rows] == [("s1", "checkpointed")]

        # queries transparently restore
        assert client.log("s1")["rows"] == 5
        assert client.delete_session("s1")["status"] == "deleted"
        assert client.list_sessions() == []

    def test_generated_id(self, service):
        client, __ = service
        info = client.create_session(**TINY)
        assert len(info["id"]) == 12

    def test_unknown_session_404(self, service):
        client, __ = service
        for call in (
            lambda: client.session("ghost"),
            lambda: client.run_plan("ghost", PLAN),
            lambda: client.log("ghost"),
            lambda: client.delete_session("ghost"),
        ):
            with pytest.raises(ServiceClientError) as err:
                call()
            assert err.value.status == 404

    def test_bad_requests_400(self, service):
        client, __ = service
        with pytest.raises(ServiceClientError) as err:
            client.create_session(id="x", settings={"hosts": -3})
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client.create_session(id="bad/id", **TINY)
        assert err.value.status == 400
        client.create_session(id="ok", **TINY)
        with pytest.raises(ServiceClientError) as err:
            client.run_plan("ok", {"items": "nope"})
        assert err.value.status == 400
        with pytest.raises(ServiceClientError) as err:
            client.advance("ok", -5.0)
        assert err.value.status == 400

    def test_duplicate_create_409(self, service):
        client, __ = service
        client.create_session(id="dup", **TINY)
        with pytest.raises(ServiceClientError) as err:
            client.create_session(id="dup", **TINY)
        assert err.value.status == 409

    def test_unknown_route_404(self, service):
        client, __ = service
        with pytest.raises(ServiceClientError) as err:
            client.request("GET", "/not-a-thing")
        assert err.value.status == 404

    def test_responses_strict_json(self, service):
        """Aggregations with undefined metrics must still be valid JSON
        (NaN scrubbed to null, which strict parsers accept)."""
        client, __ = service
        client.create_session(id="j", **TINY)
        base = client.base_url
        with urllib.request.urlopen(f"{base}/sessions/j/log") as response:
            parsed = json.loads(
                response.read().decode("utf-8"), parse_constant=lambda _: 1 / 0
            )
        assert parsed["rows"] == 0


class TestConcurrentClients:
    def test_sessions_isolated_under_concurrency(self, service):
        """Concurrent clients on same-seed sessions see records
        identical to a solo run — no cross-session RNG or state leaks."""
        client, __ = service
        ids = ["iso1", "iso2", "iso3"]
        for session_id in ids:
            client.create_session(id=session_id, **TINY)

        solo = ServiceClient(client.base_url)
        solo.create_session(id="solo", **TINY)
        solo_summary = solo.run_plan("solo", PLAN)["summary"]

        summaries = {}
        errors = []

        def drive(session_id):
            try:
                local = ServiceClient(client.base_url)
                local.run_plan(session_id, PLAN)
                local.advance(session_id, 60.0)
                summaries[session_id] = local.log(session_id, by=["kind"])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((session_id, exc))

        threads = [
            threading.Thread(target=drive, args=(session_id,)) for session_id in ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120.0)
        assert not errors
        reference = summaries[ids[0]]
        for session_id in ids[1:]:
            assert summaries[session_id] == reference
        assert reference["summary"] == solo_summary

    def test_commands_on_one_session_serialize(self, service):
        """Two clients hammering one session interleave safely: every
        command lands, and the journal holds all of them in order."""
        client, orchestrator = service
        client.create_session(id="shared", **TINY)
        errors = []

        def advance_many():
            try:
                local = ServiceClient(client.base_url)
                for __ in range(5):
                    local.advance("shared", 10.0)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=advance_many) for __ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors
        session = orchestrator.get("shared")
        assert len(session.journal) == 10
        assert session.simulation.sim.now == pytest.approx(4000.0 + 100.0)


def _wait_for_server(url: str, process, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server exited early: {process.stdout.read()}"
            )
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=1.0):
                return
        except OSError:
            time.sleep(0.1)
    raise AssertionError("server did not come up in time")


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.mark.slow
class TestKillRestartDurability:
    def test_restore_across_processes(self, tmp_path):
        """Kill ``repro serve`` mid-session; a fresh process restores the
        session and finishes the workload with aggregations identical to
        an uninterrupted run."""
        state = str(tmp_path / "state")
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
        )

        def spawn():
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--host", "127.0.0.1", "--port", str(port),
                    "--state-dir", state,
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )

        client = ServiceClient(url)
        first = spawn()
        try:
            _wait_for_server(url, first)
            client.create_session(id="durable", **TINY)
            client.run_plan("durable", PLAN)
            client.advance("durable", 120.0)
            client.checkpoint("durable")
        finally:
            first.send_signal(signal.SIGKILL)
            first.wait(10.0)

        second = spawn()
        try:
            _wait_for_server(url, second)
            rows = client.list_sessions()
            assert [(r["id"], r["status"]) for r in rows] == [
                ("durable", "checkpointed")
            ]
            follow = dict(PLAN)
            follow["name"] = "after-restart"
            restored_final = client.run_plan("durable", follow)
            restored_agg = client.log("durable", by=["kind"])
        finally:
            second.send_signal(signal.SIGTERM)
            try:
                second.wait(15.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                second.kill()
                second.wait(10.0)

        # Uninterrupted twin, in process (same spec and command order).
        from repro.ops.plan import OperationPlan
        from repro.service.session import SimulationSession
        from repro.service.spec import SessionSpec

        twin = SimulationSession.build("twin", SessionSpec.from_request(TINY))
        twin.run_plan(OperationPlan.from_dict(PLAN))
        twin.advance(120.0)
        twin_final = twin.run_plan(OperationPlan.from_dict(follow))

        assert restored_final["rows"] == len(twin_final)
        twin_agg = {
            "plans": len(twin.logs),
            "rows": len(twin.combined_log()),
            "summary": twin.combined_log().summary(),
            "groups": twin.combined_log().aggregate(by=("kind",)),
        }
        assert restored_agg == json.loads(
            json.dumps(scrub_json(twin_agg))
        )
