"""Unit tests for churn trace schedules and traces."""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule


class TestNodeSchedule:
    def test_presence_inside_intervals(self):
        sched = NodeSchedule([(0.0, 10.0), (20.0, 30.0)])
        assert sched.is_online(0.0)
        assert sched.is_online(5.0)
        assert not sched.is_online(10.0)  # half-open
        assert not sched.is_online(15.0)
        assert sched.is_online(20.0)
        assert not sched.is_online(30.0)

    def test_intervals_merged_and_sorted(self):
        sched = NodeSchedule([(20.0, 30.0), (0.0, 10.0), (8.0, 12.0)])
        assert sched.intervals == ((0.0, 12.0), (20.0, 30.0))

    def test_zero_length_intervals_dropped(self):
        sched = NodeSchedule([(5.0, 5.0), (1.0, 2.0)])
        assert sched.intervals == ((1.0, 2.0),)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            NodeSchedule([(5.0, 1.0)])

    def test_uptime(self):
        sched = NodeSchedule([(0.0, 10.0), (20.0, 30.0)])
        assert sched.uptime(30.0) == 20.0
        assert sched.uptime(25.0) == 15.0
        assert sched.uptime(15.0) == 10.0
        assert sched.uptime(5.0) == 5.0

    def test_uptime_with_since(self):
        sched = NodeSchedule([(0.0, 10.0), (20.0, 30.0)])
        assert sched.uptime(30.0, since=5.0) == 15.0
        assert sched.uptime(25.0, since=22.0) == 3.0

    def test_uptime_backwards_rejected(self):
        with pytest.raises(ValueError):
            NodeSchedule([(0.0, 1.0)]).uptime(0.0, since=1.0)

    def test_availability_fraction(self):
        sched = NodeSchedule([(0.0, 10.0)])
        assert sched.availability(20.0) == pytest.approx(0.5)
        assert sched.availability(10.0) == pytest.approx(1.0)

    def test_availability_zero_window_is_instantaneous(self):
        sched = NodeSchedule([(0.0, 10.0)])
        assert sched.availability(5.0, since=5.0) == 1.0
        assert sched.availability(15.0, since=15.0) == 0.0

    def test_next_transition(self):
        sched = NodeSchedule([(0.0, 10.0), (20.0, 30.0)])
        assert sched.next_transition(5.0) == 10.0
        assert sched.next_transition(15.0) == 20.0
        assert sched.next_transition(25.0) == 30.0
        assert sched.next_transition(35.0) is None

    def test_session_stats(self):
        sched = NodeSchedule([(0.0, 10.0), (20.0, 25.0)])
        assert sched.session_count == 2
        assert sched.session_lengths() == [10.0, 5.0]
        assert sched.first_appearance() == 0.0

    def test_empty_schedule(self):
        sched = NodeSchedule([])
        assert not sched.is_online(0.0)
        assert sched.availability(100.0) == 0.0
        assert sched.first_appearance() is None


class TestChurnTrace:
    @pytest.fixture
    def trace(self):
        matrix = np.array(
            [
                [True, False, True],
                [True, False, False],
                [False, True, True],
                [True, True, True],
            ]
        )
        return ChurnTrace.from_matrix(matrix, ["a", "b", "c"], epoch_seconds=10.0)

    def test_from_matrix_dimensions(self, trace):
        assert trace.node_count == 3
        assert trace.horizon == 40.0
        assert trace.nodes == ("a", "b", "c")

    def test_presence_follows_matrix(self, trace):
        assert trace.is_online("a", 5.0)
        assert trace.is_online("a", 15.0)
        assert not trace.is_online("a", 25.0)
        assert trace.is_online("a", 35.0)
        assert not trace.is_online("b", 5.0)
        assert trace.is_online("b", 25.0)

    def test_unknown_node_is_offline(self, trace):
        assert not trace.is_online("zzz", 5.0)

    def test_online_population(self, trace):
        assert trace.online_nodes(5.0) == ["a", "c"]
        assert trace.online_count(25.0) == 2

    def test_availability_raw(self, trace):
        # Node a online epochs 0, 1, 3 of 4.
        assert trace.availability("a", 40.0) == pytest.approx(0.75)
        assert trace.lifetime_availability("a") == pytest.approx(0.75)

    def test_windowed_availability(self, trace):
        # Last 20s of node a: epochs 2 (off) and 3 (on).
        assert trace.windowed_availability("a", 40.0, 20.0) == pytest.approx(0.5)

    def test_availabilities_bulk(self, trace):
        values = trace.availabilities()
        assert set(values) == {"a", "b", "c"}
        assert values["b"] == pytest.approx(0.5)

    def test_roundtrip_matrix(self, trace):
        matrix, keys = trace.to_matrix(10.0)
        rebuilt = ChurnTrace.from_matrix(matrix, keys, 10.0)
        for node in keys:
            for t in (5.0, 15.0, 25.0, 35.0):
                assert rebuilt.is_online(node, t) == trace.is_online(node, t)

    def test_restrict(self, trace):
        sub = trace.restrict(["a", "c"])
        assert sub.nodes == ("a", "c")
        assert "b" not in sub

    def test_restrict_unknown_raises(self, trace):
        with pytest.raises(KeyError):
            trace.restrict(["zzz"])

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            ChurnTrace.from_matrix(np.ones((2, 3), dtype=bool), ["a", "b"], 10.0)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            ChurnTrace.from_matrix(np.ones((2, 2), dtype=bool), ["a", "a"], 10.0)

    def test_bad_epoch_seconds_rejected(self):
        with pytest.raises(ValueError):
            ChurnTrace.from_matrix(np.ones((2, 2), dtype=bool), ["a", "b"], 0.0)

    def test_contains(self, trace):
        assert "a" in trace
        assert "zzz" not in trace
