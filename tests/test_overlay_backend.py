"""Parity tests: the array-backed :class:`OverlayGraph` must span exactly
the overlay the seed's per-pair networkx construction spans.

The reference implementation below is the seed semantics verbatim — one
scalar ``evaluate_kind`` call per ordered pair — so any divergence in the
batched ``evaluate_all`` path (thresholds, hash matrix, cushion, band
dispatch, diagonal masking) shows up as an edge-set or kind mismatch.
Covered across pdf / ε / cushion / hash combinations, including the
non-vectorizable digest-hash fallback path.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.availability import AvailabilityPdf
from repro.core.hashing import DigestPairHash, Mix64PairHash
from repro.core.ids import make_node_ids
from repro.core.predicates import (
    NodeDescriptor,
    SliverKind,
    paper_predicate,
    random_overlay_predicate,
)
from repro.overlays.graphs import (
    OverlayGraph,
    band_connectivity,
    band_subgraph,
    build_overlay,
    build_overlay_graph,
    incoming_counts_by_kind,
    mean_out_degree,
    sliver_sizes,
)


def reference_edges(descriptors, predicate, cushion=0.0):
    """Seed semantics: scalar predicate evaluation per ordered pair."""
    edges = {}
    for x in descriptors:
        for y in descriptors:
            if predicate.evaluate(x, y, cushion=cushion):
                edges[(x.node, y.node)] = predicate.classify(
                    x.availability, y.availability
                )
    return edges


def overlay_edges(overlay):
    return {
        (overlay.ids[s], overlay.ids[d]):
            SliverKind.HORIZONTAL if h else SliverKind.VERTICAL
        for s, d, h in zip(
            overlay.src_indices, overlay.dst_indices, overlay.horizontal
        )
    }


def make_population(n, seed, skew="uniform"):
    rng = np.random.default_rng(seed)
    ids = make_node_ids(n)
    if skew == "uniform":
        avs = rng.uniform(0.02, 0.98, n)
    else:  # heavy-tailed toward high availability, like the Overnet trace
        avs = np.clip(rng.beta(4.0, 1.5, n), 0.01, 0.99)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    descriptors = [NodeDescriptor(node, float(a)) for node, a in zip(ids, avs)]
    return descriptors, pdf


class TestEdgeSetParity:
    @pytest.mark.parametrize("skew", ["uniform", "skewed"])
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.2])
    @pytest.mark.parametrize("cushion", [0.0, 0.15])
    def test_paper_predicate_parity(self, skew, epsilon, cushion):
        descriptors, pdf = make_population(160, seed=7, skew=skew)
        predicate = paper_predicate(pdf, epsilon=epsilon)
        overlay = build_overlay(descriptors, predicate, cushion=cushion)
        assert overlay_edges(overlay) == reference_edges(
            descriptors, predicate, cushion=cushion
        )

    def test_random_overlay_parity(self):
        descriptors, pdf = make_population(150, seed=11)
        predicate = random_overlay_predicate(pdf, probability=0.08)
        overlay = build_overlay(descriptors, predicate)
        assert overlay_edges(overlay) == reference_edges(descriptors, predicate)

    @pytest.mark.parametrize("algorithm", ["sha1", "md5"])
    def test_non_vectorizable_hash_fallback(self, algorithm):
        """Digest hashes cannot batch; evaluate_all must loop and still
        agree with the scalar reference."""
        descriptors, pdf = make_population(60, seed=3)
        predicate = paper_predicate(pdf, hash_fn=DigestPairHash(algorithm))
        assert not predicate.hash_fn.supports_matrix
        overlay = build_overlay(descriptors, predicate)
        assert overlay_edges(overlay) == reference_edges(descriptors, predicate)

    def test_block_tiling_invariant(self):
        """Tiling must not change the result: tiny blocks == one block."""
        descriptors, pdf = make_population(97, seed=5)
        predicate = paper_predicate(pdf)
        small = build_overlay(descriptors, predicate, block_rows=7)
        big = build_overlay(descriptors, predicate, block_rows=10_000)
        assert overlay_edges(small) == overlay_edges(big)

    def test_salted_hash_family(self):
        descriptors, pdf = make_population(80, seed=13)
        predicate = paper_predicate(pdf, hash_fn=Mix64PairHash(salt=42))
        overlay = build_overlay(descriptors, predicate)
        assert overlay_edges(overlay) == reference_edges(descriptors, predicate)

    def test_partial_custom_rule_parity(self):
        """Application rules without a closed-form matrix override may be
        partial functions (a distance-decaying vertical rule divides by
        |av(x) − av(y)|, which is only ever evaluated out-of-band by the
        scalar path); the batched path must use the same masked
        evaluation instead of the full N×N grid."""
        from repro.core.predicates import AvmemPredicate
        from repro.core.slivers import FunctionRule, LogarithmicConstantHorizontal

        descriptors, pdf = make_population(100, seed=43)
        predicate = AvmemPredicate(
            horizontal=LogarithmicConstantHorizontal(),
            vertical=FunctionRule(
                lambda ax, ay, pdf_: 0.3 / abs(ax - ay), name="distance-decay"
            ),
            pdf=pdf,
        )
        overlay = build_overlay(descriptors, predicate)
        assert overlay_edges(overlay) == reference_edges(descriptors, predicate)

    def test_long_chain_band_connectivity(self):
        """Stress the vectorized connectivity on a worst-case diameter:
        a directed chain is weakly connected; cutting one link splits it."""
        descriptors, _ = make_population(64, seed=47)
        ids = [d.node for d in descriptors]
        avs = np.full(64, 0.5)
        chain_src = np.arange(63, dtype=np.int64)
        chain_dst = np.arange(1, 64, dtype=np.int64)
        chain = OverlayGraph(
            ids, avs, chain_src, chain_dst, np.ones(63, dtype=bool)
        )
        assert chain.band_connectivity(0.0, 1.0)
        cut = np.ones(63, dtype=bool)
        cut[31] = False
        broken = OverlayGraph(
            ids, avs, chain_src[cut], chain_dst[cut], np.ones(62, dtype=bool)
        )
        assert not broken.band_connectivity(0.0, 1.0)


class TestNetworkxAdapter:
    def test_to_networkx_matches_compat_builder(self):
        descriptors, pdf = make_population(120, seed=17)
        predicate = paper_predicate(pdf)
        overlay = build_overlay(descriptors, predicate)
        graph = build_overlay_graph(descriptors, predicate)
        adapted = overlay.to_networkx()
        assert set(adapted.edges) == set(graph.edges)
        for src, dst in adapted.edges:
            assert adapted.edges[src, dst]["kind"] is graph.edges[src, dst]["kind"]
        for descriptor in descriptors:
            assert (
                adapted.nodes[descriptor.node]["availability"]
                == descriptor.availability
            )

    def test_isolated_nodes_survive_adaptation(self):
        """Nodes with no edges must still appear in the adapter output."""
        descriptors, pdf = make_population(40, seed=19)
        predicate = random_overlay_predicate(pdf, probability=0.01)
        overlay = build_overlay(descriptors, predicate)
        assert overlay.to_networkx().number_of_nodes() == 40


class TestAnalyticsParity:
    @pytest.fixture(scope="class")
    def both_backends(self):
        descriptors, pdf = make_population(200, seed=23)
        predicate = paper_predicate(pdf)
        overlay = build_overlay(descriptors, predicate)
        return overlay, overlay.to_networkx()

    def test_sliver_sizes(self, both_backends):
        overlay, graph = both_backends
        assert sliver_sizes(overlay) == sliver_sizes(graph)

    def test_incoming_counts(self, both_backends):
        overlay, graph = both_backends
        for kind in (SliverKind.HORIZONTAL, SliverKind.VERTICAL):
            assert incoming_counts_by_kind(overlay, kind) == incoming_counts_by_kind(
                graph, kind
            )

    def test_mean_out_degree(self, both_backends):
        overlay, graph = both_backends
        assert mean_out_degree(overlay) == pytest.approx(mean_out_degree(graph))

    @pytest.mark.parametrize(
        "band", [(0.0, 1.0), (0.4, 0.6), (0.05, 0.15), (0.85, 0.95), (2.0, 3.0)]
    )
    def test_band_connectivity(self, both_backends, band):
        overlay, graph = both_backends
        assert band_connectivity(overlay, *band) == band_connectivity(graph, *band)

    @pytest.mark.parametrize("band", [(0.3, 0.7), (0.9, 1.0)])
    def test_band_subgraph(self, both_backends, band):
        overlay, graph = both_backends
        array_sub = band_subgraph(overlay, *band)
        nx_sub = band_subgraph(graph, *band)
        assert isinstance(array_sub, OverlayGraph)
        assert set(array_sub.ids) == set(nx_sub.nodes)
        assert overlay_edges(array_sub) == {
            (s, d): nx_sub.edges[s, d]["kind"] for s, d in nx_sub.edges
        }

    def test_out_degrees_match_offsets(self, both_backends):
        overlay, graph = both_backends
        degrees = overlay.out_degrees()
        for i, node in enumerate(overlay.ids):
            assert degrees[i] == graph.out_degree(node)
            dsts, _ = overlay.row(i)
            assert {overlay.ids[j] for j in dsts} == set(graph.successors(node))


class TestValidation:
    def test_duplicate_ids_rejected(self):
        descriptors, pdf = make_population(10, seed=29)
        predicate = paper_predicate(pdf)
        with pytest.raises(ValueError):
            build_overlay([descriptors[0], descriptors[0]], predicate)

    def test_length_mismatch_rejected(self):
        descriptors, pdf = make_population(10, seed=31)
        predicate = paper_predicate(pdf)
        with pytest.raises(ValueError):
            predicate.evaluate_all(
                [d.node for d in descriptors], np.array([0.5, 0.5])
            )

    def test_bad_block_rows_rejected(self):
        descriptors, pdf = make_population(10, seed=37)
        predicate = paper_predicate(pdf)
        ids = [d.node for d in descriptors]
        avs = np.array([d.availability for d in descriptors])
        with pytest.raises(ValueError):
            predicate.evaluate_all(ids, avs, block_rows=0)

    def test_no_self_loops(self):
        descriptors, pdf = make_population(50, seed=41)
        overlay = build_overlay(descriptors, paper_predicate(pdf), cushion=1.0)
        assert np.all(overlay.src_indices != overlay.dst_indices)

    def test_empty_population_mean_degree(self):
        assert np.isnan(mean_out_degree(nx.DiGraph()))
        empty = OverlayGraph(
            [], np.empty(0), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool),
        )
        assert np.isnan(mean_out_degree(empty))
