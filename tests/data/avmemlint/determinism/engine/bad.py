"""True positives for every determinism rule (see test_avmemlint.py)."""

import random
import time
from random import shuffle

import numpy as np
from numpy.random import default_rng


def draw_stdlib():
    return random.random()


def reorder(items):
    shuffle(items)
    return items


def fork_np():
    return np.random.default_rng()


def fork_named():
    return default_rng()


def stamp():
    return time.time()


def pick(rng):
    ordered = [m for m in {3, 1, 2}]
    return rng.choice(ordered)
