"""Allowed patterns the determinism rules must stay silent on."""

import time
from typing import Optional

import numpy as np


def probe():
    # Duration probes measure the run without steering it.
    return time.perf_counter()


def draw(rng: Optional[np.random.Generator], members):
    # Annotations mentioning np.random and iteration over a *sorted*
    # copy are both fine.
    ordered = [m for m in sorted(members)]
    return ordered[0] if ordered else None
