"""Each violation here carries a justified inline waiver: zero findings."""

import numpy as np


def fork_np():
    # avmemlint: disable=np-random -- fixture: documented legacy fallback
    return np.random.default_rng(0)


def stamp():
    import time

    return time.time()  # avmemlint: disable=wall-clock -- fixture: display only
