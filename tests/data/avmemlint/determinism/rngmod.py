"""Sanctioned RNG module: generator construction is allowed here.

The determinism fixtures' LintConfig points ``randomness_modules`` at
this file, mirroring the real tree's ``util/randomness.py`` exemption.
"""

import numpy as np


def make(seed):
    return np.random.default_rng(seed)
