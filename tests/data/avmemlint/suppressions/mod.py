"""Suppression hygiene: a reason-less (inert) marker and an unused one."""

import numpy as np


def fork():
    # avmemlint: disable=np-random
    return np.random.default_rng(1)


def quiet():
    # avmemlint: disable=wall-clock -- nothing here reads a clock
    return 7
