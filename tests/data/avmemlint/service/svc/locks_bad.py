"""Lock-discipline true positive: unprotected mutation, no safe caller."""

import threading


class BadSession:
    def __init__(self):
        self._lock = threading.RLock()
        self.counter = 0

    def bump(self):
        self.counter += 1
