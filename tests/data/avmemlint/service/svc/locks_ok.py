"""Lock-discipline negatives: direct acquisition and run_command reach.

``GoodSession.bump`` holds its own lock; ``GoodSession._bump_locked``
never acquires one but is only reachable through the orchestrator's
``run_command`` entry point, which runs its argument under the session
lock — the reachability half of the rule.
"""

import threading


class GoodSession:
    def __init__(self):
        self._lock = threading.RLock()
        self.counter = 0

    def bump(self):
        with self._lock:
            self.counter += 1

    def _bump_locked(self):
        self.counter += 1


class Orchestrator:
    def __init__(self):
        self._lock = threading.RLock()
        self.sessions = {}

    def run_command(self, fn):
        with self._lock:
            return fn()

    def advance(self, session):
        return self.run_command(lambda: session._bump_locked())
