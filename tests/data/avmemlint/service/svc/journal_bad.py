"""Journal-coverage true positive: engine mutation, no journal append."""


class BadCommands:
    def __init__(self, sim):
        self.sim = sim
        self.journal = []

    def advance(self, horizon):
        self.sim.run_until(horizon)
