"""Journal-coverage negative: the append happens in a called helper."""


class GoodCommands:
    def __init__(self, sim):
        self.sim = sim
        self.journal = []

    def advance(self, horizon):
        self.sim.run_until(horizon)
        self._record("advance", horizon)

    def _record(self, op, arg):
        self.journal.append((op, arg))
