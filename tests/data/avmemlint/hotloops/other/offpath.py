"""Outside the hot-module scope: population loops are tolerated here."""


def report(nodes):
    return [node.label for node in nodes]
