"""A baptised hot loop: suppressed with a reason, so no finding."""


def summarize(nodes):
    total = 0
    for node in nodes:  # avmemlint: disable=hot-loop -- fixture: O(N) report path
        total += node
    return total
