"""k-sized loops (per-neighbor walks) the hot-loop rule must not flag."""


def neighbor_sum(members):
    acc = 0
    for member in members:
        acc += member
    return acc


def fanout(targets):
    return [t for t in targets]
