"""Per-node Python loops the hot-loop rule must flag (one per shape)."""


def total_degree(nodes):
    acc = 0
    for node in nodes:
        acc += node.degree
    return acc


def index_walk(node_ids):
    out = []
    for i in range(len(node_ids)):
        out.append(i)
    return out


def labels(population):
    return [p.label for p in sorted(population)]


def degrees(descriptors):
    return {key: value for key, value in descriptors.items()}
