"""Parity and unit tests for the columnar :class:`MembershipTable`.

The batched operations (``upsert_many``, ``refresh_round``) must be
observationally identical to the scalar ``upsert``/``remove`` loops they
replace — same entries, same values, same listing order — across sliver
kinds and arbitrary churn sequences.  The hypothesis property test
drives two tables through the same randomized install/refresh/scalar-op
schedule, one via the scalar reference loop and one via the bulk path,
and asserts entry-for-entry equality after every step.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import make_node_ids
from repro.core.membership import MembershipLists, MembershipTable, SliverSelector
from repro.core.predicates import SliverKind

POOL = make_node_ids(24)
OWNER = POOL[0]
CANDIDATES = POOL[1:]


def _kind(flag: bool) -> SliverKind:
    return SliverKind.HORIZONTAL if flag else SliverKind.VERTICAL


def assert_tables_identical(scalar: MembershipTable, batched: MembershipTable) -> None:
    """Entry-for-entry equality, including listing order and both slivers."""
    assert scalar.total_count == batched.total_count
    assert scalar.horizontal_count == batched.horizontal_count
    assert scalar.vertical_count == batched.vertical_count
    assert scalar.horizontal == batched.horizontal
    assert scalar.vertical == batched.vertical
    assert scalar.entries() == batched.entries()


# ----------------------------------------------------------------------
# Hypothesis churn schedules
# ----------------------------------------------------------------------
install_batches = st.lists(
    st.tuples(
        st.integers(0, len(CANDIDATES) - 1),  # candidate index
        st.floats(0.0, 1.0),  # availability
        st.booleans(),  # horizontal?
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda item: item[0],
)

refresh_specs = st.lists(
    st.tuples(
        st.booleans(),  # keep?
        st.floats(0.0, 1.0),  # re-fetched availability
        st.booleans(),  # re-classified horizontal?
    ),
    min_size=0,
    max_size=64,
)

steps = st.lists(
    st.one_of(
        st.tuples(st.just("install"), install_batches),
        st.tuples(st.just("refresh"), refresh_specs),
        st.tuples(st.just("remove"), st.integers(0, len(CANDIDATES) - 1)),
        st.tuples(st.just("upsert"), install_batches.map(lambda b: b[0])),
    ),
    min_size=1,
    max_size=16,
)


@given(schedule=steps)
@settings(max_examples=120, deadline=None)
def test_bulk_ops_match_scalar_reference(schedule):
    """upsert_many + refresh_round ≡ the scalar upsert/remove loops,
    entry for entry, across kinds and churn sequences."""
    scalar = MembershipLists(OWNER)
    batched = MembershipLists(OWNER)
    now = 0.0
    for op, payload in schedule:
        now += 10.0
        if op == "install":
            nodes = [CANDIDATES[i] for i, _, _ in payload]
            avs = np.array([av for _, av, _ in payload], dtype=float)
            flags = np.array([h for _, _, h in payload], dtype=bool)
            # Scalar reference: one upsert per batch position, in order.
            for node, av, flag in zip(nodes, avs, flags):
                scalar.upsert(node, float(av), _kind(bool(flag)), now)
            assert batched.upsert_many(nodes, avs, flags, now) == len(nodes)
        elif op == "refresh":
            # One refresh round: walk the current neighbors in listing
            # order; evict where keep=False, re-cache otherwise.
            entries = list(scalar.all_entries())
            decisions = payload[: len(entries)]
            decisions += [(True, 0.5, True)] * (len(entries) - len(decisions))
            for entry, (keep, av, flag) in zip(entries, decisions):
                if keep:
                    scalar.upsert(entry.node, float(av), _kind(bool(flag)), now)
                else:
                    scalar.remove(entry.node)
            view = batched.neighbor_arrays()
            keep_mask = np.array([d[0] for d in decisions], dtype=bool)
            avs = np.array([d[1] for d in decisions], dtype=float)
            flags = np.array([d[2] for d in decisions], dtype=bool)
            evicted = batched.refresh_round(view.slots, avs, flags, keep_mask, now)
            assert evicted == int(np.count_nonzero(~keep_mask))
        elif op == "remove":
            node = CANDIDATES[payload]
            assert scalar.remove(node) == batched.remove(node)
        else:  # scalar upsert on the batched table too (mixed usage)
            index, av, flag = payload
            node = CANDIDATES[index]
            scalar.upsert(node, av, _kind(flag), now)
            batched.upsert(node, av, _kind(flag), now)
        assert_tables_identical(scalar, batched)


# ----------------------------------------------------------------------
# Bulk-operation unit tests
# ----------------------------------------------------------------------
class TestUpsertMany:
    def test_empty_batch_is_noop(self):
        table = MembershipTable(OWNER)
        assert table.upsert_many([], np.empty(0), np.empty(0, dtype=bool), 0.0) == 0
        assert table.total_count == 0

    def test_owner_in_batch_rejected(self):
        table = MembershipTable(OWNER)
        with pytest.raises(ValueError, match="own neighbor"):
            table.upsert_many(
                [CANDIDATES[0], OWNER], np.array([0.5, 0.6]),
                np.array([True, False]), now=0.0,
            )

    def test_duplicate_nodes_rejected(self):
        table = MembershipTable(OWNER)
        with pytest.raises(ValueError, match="unique"):
            table.upsert_many(
                [CANDIDATES[0], CANDIDATES[0]], np.array([0.5, 0.6]),
                np.array([True, False]), now=0.0,
            )

    def test_mismatched_lengths_rejected(self):
        table = MembershipTable(OWNER)
        with pytest.raises(ValueError, match="parallel"):
            table.upsert_many(
                [CANDIDATES[0]], np.array([0.5, 0.6]), np.array([True]), now=0.0
            )

    def test_updates_preserve_added_at(self):
        table = MembershipTable(OWNER)
        table.upsert_many(
            CANDIDATES[:2], np.array([0.2, 0.8]), np.array([True, False]), now=1.0
        )
        table.upsert_many(
            CANDIDATES[:3], np.array([0.3, 0.7, 0.5]),
            np.array([False, False, True]), now=2.0,
        )
        first = table.get(CANDIDATES[0])
        assert first.added_at == 1.0
        assert first.checked_at == 2.0
        assert first.kind is SliverKind.VERTICAL
        assert table.get(CANDIDATES[2]).added_at == 2.0
        assert table.total_count == 3

    def test_precomputed_digests_accepted(self):
        table = MembershipTable(OWNER)
        nodes = CANDIDATES[:4]
        digests = np.array([n.digest64 for n in nodes], dtype=np.uint64)
        table.upsert_many(
            nodes, np.linspace(0.1, 0.9, 4), np.array([True, True, False, False]),
            now=0.0, digests=digests,
        )
        assert table.neighbor_ids() == list(nodes[:2]) + list(nodes[2:])

    def test_scalar_lookup_after_bulk_install(self):
        table = MembershipTable(OWNER)
        table.upsert_many(
            CANDIDATES[:5], np.linspace(0.1, 0.5, 5), np.ones(5, dtype=bool), now=0.0
        )
        assert CANDIDATES[3] in table
        assert table.get(CANDIDATES[3]).availability == pytest.approx(0.4)
        assert table.get(CANDIDATES[10]) is None


class TestRefreshRound:
    def _installed(self):
        table = MembershipTable(OWNER)
        table.upsert_many(
            CANDIDATES[:6], np.linspace(0.1, 0.6, 6),
            np.array([True, True, True, False, False, False]), now=0.0,
        )
        return table

    def test_evicts_and_recaches(self):
        table = self._installed()
        view = table.neighbor_arrays()
        keep = np.array([True, False, True, True, False, True])
        new_avs = view.availabilities + 0.1
        evicted = table.refresh_round(
            view.slots, new_avs, view.horizontal, keep, now=5.0
        )
        assert evicted == 2
        assert table.total_count == 4
        survivor = table.get(view.nodes[0])
        assert survivor.checked_at == 5.0
        assert survivor.availability == pytest.approx(view.availabilities[0] + 0.1)
        assert view.nodes[1] not in table

    def test_sliver_reclassification_moves_entry(self):
        table = self._installed()
        view = table.neighbor_arrays()
        flags = view.horizontal.copy()
        flags[0] = False  # HS -> VS
        table.refresh_round(
            view.slots, view.availabilities, flags,
            np.ones(view.slots.size, dtype=bool), now=5.0,
        )
        moved = table.get(view.nodes[0])
        assert moved.kind is SliverKind.VERTICAL
        # Re-seq in pass order: the mover was refreshed first, so it now
        # leads the VS listing (exactly what the scalar loop produces).
        assert table.vertical[0].node == view.nodes[0]

    def test_stale_slots_rejected(self):
        table = self._installed()
        view = table.neighbor_arrays()
        table.remove(view.nodes[0])
        with pytest.raises(ValueError, match="stale slot"):
            table.refresh_round(
                view.slots, view.availabilities, view.horizontal,
                np.ones(view.slots.size, dtype=bool), now=5.0,
            )

    def test_empty_round_is_noop(self):
        table = MembershipTable(OWNER)
        view = table.neighbor_arrays()
        assert table.refresh_round(
            view.slots, view.availabilities, view.horizontal,
            np.empty(0, dtype=bool), now=1.0,
        ) == 0

    def test_mismatched_lengths_rejected(self):
        table = self._installed()
        view = table.neighbor_arrays()
        with pytest.raises(ValueError, match="parallel"):
            table.refresh_round(
                view.slots, view.availabilities[:2], view.horizontal,
                np.ones(view.slots.size, dtype=bool), now=1.0,
            )


class TestCompaction:
    def test_long_churn_compacts_dead_slots(self):
        """Interleaved installs and evictions must not leak slots."""
        table = MembershipTable(OWNER)
        rng = np.random.default_rng(0)
        for round_no in range(40):
            picks = rng.choice(len(CANDIDATES), size=6, replace=False)
            nodes = [CANDIDATES[i] for i in picks]
            table.upsert_many(
                nodes, rng.uniform(0, 1, 6), rng.uniform(0, 1, 6) < 0.5,
                now=float(round_no),
            )
            view = table.neighbor_arrays()
            keep = rng.uniform(0, 1, view.slots.size) < 0.4
            table.refresh_round(
                view.slots, view.availabilities, view.horizontal, keep,
                now=float(round_no) + 0.5,
            )
        # The slot high-water mark stays bounded by live + dead allowance.
        assert table._size <= table.total_count + max(8, table.total_count) + 6

    def test_neighbor_view_matches_entries_order(self):
        table = MembershipTable(OWNER)
        table.upsert_many(
            CANDIDATES[:8], np.linspace(0.1, 0.8, 8),
            np.array([True, False] * 4), now=0.0,
        )
        view = table.neighbor_arrays()
        assert list(view.nodes) == table.neighbor_ids(SliverSelector.BOTH)
        assert list(view.availabilities) == [
            e.availability for e in table.entries()
        ]
        assert [bool(h) for h in view.horizontal] == [
            e.kind is SliverKind.HORIZONTAL for e in table.entries()
        ]
        assert list(view.digests) == [n.digest64 for n in view.nodes]
