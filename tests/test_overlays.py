"""Unit tests for overlay graph analysis and baseline membership protocols."""

import networkx as nx
import numpy as np
import pytest

from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import (
    NodeDescriptor,
    SliverKind,
    paper_predicate,
    random_overlay_predicate,
)
from repro.overlays.cyclon import CyclonView
from repro.overlays.graphs import (
    band_connectivity,
    band_subgraph,
    build_overlay_graph,
    incoming_counts_by_kind,
    mean_out_degree,
    sliver_sizes,
)
from repro.overlays.random_overlay import (
    degree_matched_random_predicate,
    mean_avmem_degree,
)
from repro.overlays.scamp import ScampMembership
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(99)
    ids = make_node_ids(250)
    avs = rng.uniform(0.02, 0.98, 250)
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    descriptors = [NodeDescriptor(n, float(a)) for n, a in zip(ids, avs)]
    return descriptors, pdf


class TestGraphBuilder:
    def test_nodes_and_attributes(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors, paper_predicate(pdf))
        assert graph.number_of_nodes() == 250
        for descriptor in descriptors[:10]:
            assert graph.nodes[descriptor.node]["availability"] == descriptor.availability

    def test_edges_match_predicate(self, population):
        descriptors, pdf = population
        predicate = paper_predicate(pdf)
        graph = build_overlay_graph(descriptors, predicate)
        by_node = {d.node: d for d in descriptors}
        for src, dst, data in list(graph.edges(data=True))[:200]:
            assert predicate.evaluate(by_node[src], by_node[dst])
            expected = predicate.classify(
                by_node[src].availability, by_node[dst].availability
            )
            assert data["kind"] is expected

    def test_no_self_loops(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors, paper_predicate(pdf))
        assert nx.number_of_selfloops(graph) == 0

    def test_duplicate_ids_rejected(self, population):
        descriptors, pdf = population
        dupes = [descriptors[0], descriptors[0]]
        with pytest.raises(ValueError):
            build_overlay_graph(dupes, paper_predicate(pdf))

    def test_cushion_only_adds_edges(self, population):
        descriptors, pdf = population
        predicate = paper_predicate(pdf)
        base = build_overlay_graph(descriptors, predicate)
        wide = build_overlay_graph(descriptors, predicate, cushion=0.2)
        assert wide.number_of_edges() > base.number_of_edges()
        assert set(base.edges) <= set(wide.edges)

    def test_sliver_sizes_sum_to_out_degree(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors, paper_predicate(pdf))
        sizes = sliver_sizes(graph)
        for node, (hs, vs) in sizes.items():
            assert hs + vs == graph.out_degree(node)

    def test_incoming_counts(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors, paper_predicate(pdf))
        incoming_vs = incoming_counts_by_kind(graph, SliverKind.VERTICAL)
        total_vs_edges = sum(
            1 for _, _, d in graph.edges(data=True) if d["kind"] is SliverKind.VERTICAL
        )
        assert sum(incoming_vs.values()) == total_vs_edges

    def test_band_subgraph_members(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors, paper_predicate(pdf))
        sub = band_subgraph(graph, 0.4, 0.6)
        for node in sub.nodes:
            assert 0.4 <= graph.nodes[node]["availability"] <= 0.6

    def test_band_connectivity_trivial_cases(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors[:3], paper_predicate(pdf))
        # A band with at most one node counts as connected.
        assert band_connectivity(graph, 2.0, 3.0) or True
        assert band_connectivity(graph, -1.0, -0.5)

    def test_mean_out_degree(self, population):
        descriptors, pdf = population
        graph = build_overlay_graph(descriptors, paper_predicate(pdf))
        assert mean_out_degree(graph) == pytest.approx(
            graph.number_of_edges() / graph.number_of_nodes()
        )

    def test_mean_out_degree_empty_graph(self):
        assert np.isnan(mean_out_degree(nx.DiGraph()))


class TestRandomOverlayBaseline:
    def test_degree_matching(self, population):
        descriptors, pdf = population
        avmem = paper_predicate(pdf)
        random_pred = degree_matched_random_predicate(avmem, descriptors)
        g_avmem = build_overlay_graph(descriptors, avmem)
        g_random = build_overlay_graph(descriptors, random_pred)
        assert mean_out_degree(g_random) == pytest.approx(
            mean_out_degree(g_avmem), rel=0.25
        )

    def test_random_overlay_is_availability_blind(self, population):
        descriptors, pdf = population
        predicate = random_overlay_predicate(pdf, probability=0.06)
        graph = build_overlay_graph(descriptors, predicate)
        # Out-degree uncorrelated with availability: correlation near 0.
        avs = np.array([d.availability for d in descriptors])
        degrees = np.array([graph.out_degree(d.node) for d in descriptors])
        corr = np.corrcoef(avs, degrees)[0, 1]
        assert abs(corr) < 0.25

    def test_mean_avmem_degree_requires_descriptors(self, population):
        _, pdf = population
        with pytest.raises(ValueError):
            mean_avmem_degree(paper_predicate(pdf), [])


class TestCyclon:
    def test_view_invariants_after_shuffling(self, rng):
        sim = Simulator()
        ids = make_node_ids(60)
        cyclon = CyclonView(sim, ids, view_size=8, shuffle_length=4, rng=rng, start=False)
        for _ in range(20):
            cyclon.step()
        for node in ids:
            view = cyclon.view(node)
            assert node not in view
            assert len(view) <= 8
            assert len(set(view)) == len(view)

    def test_exchange_count_grows(self, rng):
        sim = Simulator()
        ids = make_node_ids(40)
        cyclon = CyclonView(sim, ids, 8, 4, rng=rng, start=False)
        cyclon.step()
        assert cyclon.exchange_count >= 30

    def test_ages_reset_by_exchange(self, rng):
        sim = Simulator()
        ids = make_node_ids(40)
        cyclon = CyclonView(sim, ids, 8, 4, rng=rng, start=False)
        for _ in range(5):
            cyclon.step()
        # Fresh self-pointers keep some ages low.
        all_ages = [age for node in ids for age in cyclon.entry_ages(node)]
        assert min(all_ages) <= 1

    def test_eventual_coverage(self, rng):
        sim = Simulator()
        ids = make_node_ids(30)
        cyclon = CyclonView(sim, ids, 6, 3, rng=rng, start=False)
        seen = set()
        for _ in range(100):
            cyclon.step()
            seen.update(cyclon.view(ids[0]))
        assert len(seen) >= 22

    def test_in_degree_balanced(self, rng):
        """CYCLON's hallmark: in-degrees concentrate around view_size."""
        sim = Simulator()
        ids = make_node_ids(80)
        cyclon = CyclonView(sim, ids, 8, 4, rng=rng, start=False)
        for _ in range(40):
            cyclon.step()
        in_deg = {node: 0 for node in ids}
        for node in ids:
            for neighbor in cyclon.view(node):
                in_deg[neighbor] += 1
        values = np.array(list(in_deg.values()))
        assert values.std() < 0.6 * values.mean() + 2

    def test_parameter_validation(self, rng):
        sim = Simulator()
        ids = make_node_ids(10)
        with pytest.raises(ValueError):
            CyclonView(sim, ids, view_size=0, shuffle_length=1, rng=rng)
        with pytest.raises(ValueError):
            CyclonView(sim, ids, view_size=4, shuffle_length=9, rng=rng)

    def test_periodic_task(self, rng):
        sim = Simulator()
        ids = make_node_ids(20)
        cyclon = CyclonView(sim, ids, 5, 2, rng=rng, period=10.0)
        sim.run_until(35.0)
        assert cyclon.exchange_count > 0
        cyclon.stop()


class TestScamp:
    def test_join_all_views_grow_logarithmically(self, rng):
        scamp = ScampMembership(c=1, rng=rng)
        ids = make_node_ids(300)
        scamp.join_all(ids)
        sizes = np.array(scamp.view_sizes())
        # Mean view size ~ (c+1) log N ~ 11 for N=300; generous bounds.
        assert 2.0 <= sizes.mean() <= 30.0
        assert sizes.max() < 80

    def test_membership_connected(self, rng):
        scamp = ScampMembership(c=1, rng=rng)
        ids = make_node_ids(150)
        scamp.join_all(ids)
        reachable = scamp.reachable_from(ids[0])
        assert len(reachable) >= 0.95 * 150

    def test_double_join_rejected(self, rng):
        scamp = ScampMembership(rng=rng)
        ids = make_node_ids(3)
        scamp.join(ids[0])
        with pytest.raises(ValueError):
            scamp.join(ids[0], ids[0])

    def test_second_node_needs_contact(self, rng):
        scamp = ScampMembership(rng=rng)
        ids = make_node_ids(3)
        scamp.join(ids[0])
        with pytest.raises(ValueError):
            scamp.join(ids[1], contact=None)

    def test_unknown_contact_rejected(self, rng):
        scamp = ScampMembership(rng=rng)
        ids = make_node_ids(3)
        scamp.join(ids[0])
        with pytest.raises(KeyError):
            scamp.join(ids[1], contact=ids[2])

    def test_in_degree_positive_for_everyone(self, rng):
        """Every subscription lands somewhere: no orphan nodes."""
        scamp = ScampMembership(c=2, rng=rng)
        ids = make_node_ids(100)
        scamp.join_all(ids)
        orphans = sum(1 for node in ids[1:] if scamp.in_degree(node) == 0)
        assert orphans <= 2
