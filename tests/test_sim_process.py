"""Unit tests for the generator-process layer."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import spawn


class TestProcessExecution:
    def test_sequential_delays(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 5.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0.0, 5.0, 7.5]

    def test_initial_spawn_delay(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 1.0

        spawn(sim, proc(), delay=3.0)
        sim.run()
        assert log == [3.0]

    def test_return_value_captured(self, sim):
        def proc():
            yield 1.0
            return "done"

        process = spawn(sim, proc())
        sim.run()
        assert process.done
        assert process.result == "done"

    def test_on_done_callback(self, sim):
        finished = []

        def proc():
            yield 1.0
            return 42

        spawn(sim, proc(), on_done=lambda p: finished.append(p.result))
        sim.run()
        assert finished == [42]

    def test_zero_delay_yields_allowed(self, sim):
        log = []

        def proc():
            yield 0.0
            log.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert log == [0.0]

    def test_two_processes_interleave(self, sim):
        log = []

        def proc(tag, delay):
            for _ in range(3):
                yield delay
                log.append((tag, sim.now))

        spawn(sim, proc("fast", 1.0))
        spawn(sim, proc("slow", 2.0))
        sim.run()
        assert log == [
            ("fast", 1.0),
            ("slow", 2.0),  # slow's t=2 resume was scheduled first
            ("fast", 2.0),
            ("fast", 3.0),
            ("slow", 4.0),
            ("slow", 6.0),
        ]


class TestProcessErrors:
    def test_negative_yield_raises(self, sim):
        def proc():
            yield -1.0

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_numeric_yield_raises(self, sim):
        def proc():
            yield "soon"

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_propagates(self, sim):
        def proc():
            yield 1.0
            raise ValueError("boom")

        spawn(sim, proc())
        with pytest.raises(ValueError, match="boom"):
            sim.run()


class TestInterrupt:
    def test_interrupt_stops_process(self, sim):
        log = []

        def proc():
            while True:
                yield 1.0
                log.append(sim.now)

        process = spawn(sim, proc())
        sim.run_until(3.5)
        process.interrupt()
        sim.run_until(10.0)
        assert log == [1.0, 2.0, 3.0]
        assert process.done

    def test_interrupt_runs_finally(self, sim):
        cleaned = []

        def proc():
            try:
                while True:
                    yield 1.0
            finally:
                cleaned.append(True)

        process = spawn(sim, proc())
        sim.run_until(2.0)
        process.interrupt()
        assert cleaned == [True]

    def test_interrupt_after_done_is_noop(self, sim):
        def proc():
            yield 1.0
            return 5

        process = spawn(sim, proc())
        sim.run()
        process.interrupt()
        assert process.result == 5
