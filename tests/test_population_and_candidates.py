"""Struct-of-arrays population core and candidate-generated overlay
construction.

Two exactness contracts are property-tested here:

* candidate-generated ``evaluate_all`` — the O(N·k) interval-enumeration
  path over an interval-searchable hash — returns the *identical* CSR
  triple (same arrays, same order) as the exhaustive N×N block sweep,
  across predicate families, epsilons, and cushions;
* a population-backed (row-keyed) membership table is entry-for-entry
  equal to the object-backed seed path through install and refresh
  flows.

Plus the :class:`~repro.core.population.Population` basics (synthetic
digests match the NodeId construction they mirror, row/id round-trips)
and the memmap spill/open round-trip of :class:`ChurnTimeline`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.timeline import ChurnTimeline
from repro.core.availability import AvailabilityPdf
from repro.core.hashing import Affine64PairHash, Mix64PairHash
from repro.core.ids import digest_array, make_node_ids
from repro.core.membership import MembershipLists
from repro.core.population import Population
from repro.core.predicates import AvmemPredicate, paper_predicate
from repro.core.slivers import (
    ConstantHorizontal,
    ConstantVertical,
    LogarithmicConstantHorizontal,
    LogarithmicDecreasingVertical,
    LogarithmicVertical,
    RandomUniformRule,
)
from repro.overlays.graphs import OverlayGraph


# ----------------------------------------------------------------------
# Population
# ----------------------------------------------------------------------
class TestPopulation:
    def test_synthetic_matches_node_id_digests(self):
        n = 50
        pop = Population.synthetic(np.linspace(0.05, 0.95, n))
        assert (pop.digests == digest_array(make_node_ids(n))).all()

    def test_id_of_round_trips_and_caches(self):
        pop = Population.synthetic(np.linspace(0.1, 0.9, 30))
        node = pop.id_of(7)
        assert node == make_node_ids(30)[7]
        assert pop.id_of(7) is node  # cached, not rebuilt
        assert pop.row_of(node) == 7

    def test_from_ids_preserves_identity(self):
        ids = make_node_ids(20)
        pop = Population.from_ids(tuple(ids), np.linspace(0.1, 0.9, 20))
        assert pop.id_of(3) is ids[3]
        assert pop.find_row(ids[11]) == 11

    def test_find_row_unknown_is_minus_one(self):
        pop = Population.synthetic(np.linspace(0.1, 0.9, 10))
        foreign = make_node_ids(12)[11]
        assert pop.find_row(foreign) == -1
        assert foreign not in pop
        with pytest.raises(KeyError):
            pop.row_of(foreign)

    def test_with_availabilities_shares_identity_columns(self):
        pop = Population.synthetic(np.linspace(0.1, 0.9, 25))
        other = pop.with_availabilities(np.linspace(0.9, 0.1, 25))
        assert other.digests is pop.digests
        assert other.id_of(4) is pop.id_of(4)
        assert other.availabilities[0] != pop.availabilities[0]


# ----------------------------------------------------------------------
# Candidate vs exhaustive CSR parity
# ----------------------------------------------------------------------
def _pdf(avs: np.ndarray) -> AvailabilityPdf:
    return AvailabilityPdf.from_samples(avs, online_weighted=False)


def _rule_pair(name: str, epsilon: float):
    if name == "paper":
        return LogarithmicConstantHorizontal(epsilon=epsilon), LogarithmicVertical()
    if name == "constant":
        return ConstantHorizontal(0.7), ConstantVertical(0.15)
    if name == "distance":
        return ConstantHorizontal(0.5), LogarithmicDecreasingVertical()
    if name == "random":
        rule = RandomUniformRule(0.2)
        return rule, rule
    raise AssertionError(name)


avail_arrays = st.lists(
    st.floats(0.01, 0.99, allow_nan=False), min_size=2, max_size=64
).map(lambda xs: np.array(xs, dtype=float))


@given(
    avs=avail_arrays,
    family=st.sampled_from(["paper", "constant", "distance", "random"]),
    epsilon=st.sampled_from([0.03, 0.1, 0.25]),
    cushion=st.sampled_from([0.0, 0.05]),
    salt=st.integers(0, 3),
)
@settings(max_examples=120, deadline=None)
def test_candidate_csr_identical_to_exhaustive(avs, family, epsilon, cushion, salt):
    horizontal, vertical = _rule_pair(family, epsilon)
    predicate = AvmemPredicate(
        horizontal=horizontal,
        vertical=vertical,
        pdf=_pdf(avs),
        epsilon=epsilon,
        hash_fn=Affine64PairHash(salt=salt),
    )
    assert predicate.supports_candidate_generation
    pop = Population.synthetic(avs)
    exhaustive = predicate.evaluate_all_rows(
        pop.digests, avs, cushion=cushion, method="exhaustive"
    )
    candidates = predicate.evaluate_all_rows(
        pop.digests, avs, cushion=cushion, method="candidates"
    )
    for got, want in zip(candidates, exhaustive):
        assert got.dtype == want.dtype
        assert (got == want).all()


def test_candidates_rejected_for_non_interval_hash():
    avs = np.linspace(0.1, 0.9, 12)
    predicate = paper_predicate(_pdf(avs), hash_fn=Mix64PairHash())
    assert not predicate.supports_candidate_generation
    pop = Population.synthetic(avs)
    with pytest.raises(ValueError):
        predicate.evaluate_all_rows(pop.digests, avs, method="candidates")
    # "auto" silently falls back to the exhaustive sweep.
    src, dst, horizontal = predicate.evaluate_all_rows(pop.digests, avs, method="auto")
    want = predicate.evaluate_all_rows(pop.digests, avs, method="exhaustive")
    assert (src == want[0]).all() and (dst == want[1]).all()


def test_build_rows_matches_build(small_population):
    descriptors, _, predicate = small_population
    avs = np.array([d.availability for d in descriptors])
    pop = Population.from_ids(tuple(d.node for d in descriptors), avs)
    via_build = OverlayGraph.build(descriptors, predicate)
    via_rows = OverlayGraph.build_rows(pop, predicate)
    assert (via_rows.src_indices == via_build.src_indices).all()
    assert (via_rows.dst_indices == via_build.dst_indices).all()
    assert (via_rows.horizontal == via_build.horizontal).all()
    assert via_rows.ids == via_build.ids


# ----------------------------------------------------------------------
# Row-keyed membership == object-keyed membership
# ----------------------------------------------------------------------
batch_lists = st.lists(
    st.tuples(
        st.integers(1, 29),  # population row (owner is row 0)
        st.floats(0.01, 0.99, allow_nan=False),
        st.booleans(),
    ),
    min_size=0,
    max_size=12,
)


@given(batches=st.lists(batch_lists, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_row_table_matches_object_table(batches):
    pop = Population.synthetic(np.linspace(0.05, 0.95, 30))
    owner = pop.id_of(0)
    row_table = MembershipLists(owner, population=pop)
    obj_table = MembershipLists(owner)
    now = 0.0
    for batch in batches:
        seen = set()
        rows, avs, kinds = [], [], []
        for row, av, horizontal in batch:
            if row in seen:
                continue
            seen.add(row)
            rows.append(row)
            avs.append(av)
            kinds.append(horizontal)
        if not rows:
            continue
        now += 10.0
        rows = np.array(rows, dtype=np.int64)
        avs = np.array(avs)
        kinds = np.array(kinds, dtype=bool)
        row_table.upsert_rows(rows, avs, kinds, now=now)
        obj_table.upsert_many(pop.ids_of(rows), avs, kinds, now=now)
        assert row_table.entries() == obj_table.entries()
    # One refresh round applied identically to both tables: evict every
    # other listed neighbor, flip the rest's sliver kind.
    row_view = row_table.neighbor_arrays(with_nodes=False)
    obj_view = obj_table.neighbor_arrays()
    assert row_view.nodes is None
    assert (row_view.digests == obj_view.digests).all()
    assert (pop.digests[row_view.rows] == row_view.digests).all()
    if row_view.slots.size:
        keep = np.arange(row_view.slots.size) % 2 == 0
        new_avs = np.linspace(0.2, 0.8, row_view.slots.size)
        flipped = ~row_view.horizontal
        evicted_rows = row_table.refresh_round(
            row_view.slots, new_avs, flipped, keep, now=now + 5.0
        )
        evicted_objs = obj_table.refresh_round(
            obj_view.slots, new_avs, flipped, keep, now=now + 5.0
        )
        assert evicted_rows == evicted_objs
        assert row_table.entries() == obj_table.entries()


def test_upsert_rows_validation():
    pop = Population.synthetic(np.linspace(0.05, 0.95, 10))
    table = MembershipLists(pop.id_of(0), population=pop)
    with pytest.raises(ValueError, match="own neighbor"):
        table.upsert_rows(
            np.array([0]), np.array([0.5]), np.array([True]), now=0.0
        )
    with pytest.raises(ValueError, match="unique"):
        table.upsert_rows(
            np.array([1, 1]), np.array([0.5, 0.6]), np.array([True, False]), now=0.0
        )
    plain = MembershipLists(pop.id_of(0))
    with pytest.raises(ValueError, match="population-backed"):
        plain.upsert_rows(np.array([1]), np.array([0.5]), np.array([True]), now=0.0)


# ----------------------------------------------------------------------
# Memmap timeline round-trip
# ----------------------------------------------------------------------
def test_timeline_spill_and_open_round_trip(tmp_path, rng):
    n = 60
    horizon = 50_000.0
    edges = np.sort(rng.uniform(0.0, horizon, (n, 6)), axis=1)
    timeline = ChurnTimeline(
        n,
        horizon,
        np.repeat(np.arange(n, dtype=np.int64), 3),
        edges[:, 0::2].ravel(),
        edges[:, 1::2].ravel(),
    )
    nodes = rng.integers(0, n, 300, dtype=np.int64)
    times = rng.uniform(0.0, horizon, 300)
    expect_online = timeline.is_online_array(nodes, times)
    expect_avail = timeline.availability_array(nodes, times)
    expect_mask = timeline.online_mask(horizon / 2)

    storage = str(tmp_path / "spill")
    returned = timeline.spill_to(storage)
    assert returned is timeline
    assert isinstance(timeline.starts, np.memmap)
    assert (timeline.availability_array(nodes, times) == expect_avail).all()

    reopened = ChurnTimeline.open(storage)
    reopened.validate()
    assert reopened.n_nodes == n and reopened.horizon == horizon
    assert (reopened.is_online_array(nodes, times) == expect_online).all()
    assert (reopened.availability_array(nodes, times) == expect_avail).all()
    assert (reopened.online_mask(horizon / 2) == expect_mask).all()

    trace = reopened.to_trace()
    assert trace.schedule(4).intervals == tuple(
        zip(*(arr.tolist() for arr in timeline.sessions_of(4)))
    )


def test_open_rejects_foreign_directory(tmp_path):
    with pytest.raises((FileNotFoundError, ValueError)):
        ChurnTimeline.open(str(tmp_path))
