"""Tests for the columnar :class:`~repro.ops.log.OperationLog`.

Covers the append → finalize → export → reload round-trip and checks
every vectorized aggregation against pure-Python reference math over the
same synthetic records.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.ids import make_node_ids
from repro.ops.log import COLUMN_NAMES, STATUSES, OperationLog
from repro.ops.plan import OperationItem, OperationTiming
from repro.ops.results import AnycastRecord, AnycastStatus, MulticastRecord
from repro.ops.spec import TargetSpec

IDS = make_node_ids(40)
BANDS = ("low", "mid", "high")
POLICIES = ("greedy", "retry-greedy", "anneal")
TARGETS = (TargetSpec.range(0.2, 0.4), TargetSpec.threshold(0.6))


def synth_anycast(i: int, rng: np.random.Generator) -> AnycastRecord:
    status = STATUSES[int(rng.integers(2, len(STATUSES)))]  # terminal-ish
    record = AnycastRecord(
        op_id=i,
        initiator=IDS[int(rng.integers(len(IDS)))],
        target=TARGETS[int(rng.integers(len(TARGETS)))],
        policy=POLICIES[int(rng.integers(len(POLICIES)))],
        selector="hs+vs",
        started_at=float(rng.uniform(0, 100)),
        status=status,
    )
    record.data_messages = int(rng.integers(0, 10))
    record.ack_messages = int(rng.integers(0, 4))
    record.retries_used = int(rng.integers(0, 3))
    if status == AnycastStatus.DELIVERED:
        record.delivered_at = record.started_at + float(rng.uniform(0.01, 0.5))
        record.delivery_node = IDS[int(rng.integers(len(IDS)))]
        record.hops = int(rng.integers(1, 7))
    return record


def synth_multicast(i: int, rng: np.random.Generator) -> MulticastRecord:
    anycast = synth_anycast(i, rng)
    eligible = {IDS[j] for j in rng.choice(len(IDS), size=8, replace=False)}
    record = MulticastRecord(
        op_id=i,
        initiator=anycast.initiator,
        target=anycast.target,
        mode="flood" if rng.random() < 0.5 else "gossip",
        selector="hs+vs",
        started_at=anycast.started_at,
        anycast=anycast,
        eligible=eligible,
    )
    for node in list(eligible)[: int(rng.integers(0, len(eligible) + 1))]:
        record.deliveries[node] = record.started_at + float(rng.uniform(0.01, 2.0))
    for j in range(int(rng.integers(0, 4))):
        record.spam.append((IDS[j], record.started_at + float(rng.uniform(0.01, 2.0))))
    record.data_messages = int(rng.integers(0, 200))
    record.duplicate_receptions = int(rng.integers(0, 50))
    return record


@pytest.fixture
def synthetic():
    rng = np.random.default_rng(77)
    anycasts = [synth_anycast(i, rng) for i in range(60)]
    multicasts = [synth_multicast(100 + i, rng) for i in range(25)]
    return anycasts, multicasts


@pytest.fixture
def synthetic_log(synthetic):
    anycasts, multicasts = synthetic
    rng = np.random.default_rng(8)
    builder = OperationLog.builder()
    bands = []
    for record in anycasts:
        band = BANDS[int(rng.integers(3))]
        bands.append(band)
        builder.append_anycast(record, band=band, item=0)
    for record in multicasts:
        band = BANDS[int(rng.integers(3))]
        bands.append(band)
        builder.append_multicast(record, band=band, item=1)
    # two skipped slots
    skipped_item = OperationItem(
        kind="anycast", target=TARGETS[0], band="low",
        timing=OperationTiming(mode="batch"),
    )
    builder.append_skipped(skipped_item, item=0, at=3.0)
    builder.append_skipped(skipped_item, item=0)
    return builder.finalize(), bands


class TestBuilderAndMasks:
    def test_row_counts(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        assert len(log) == len(anycasts) + len(multicasts) + 2
        assert int(log.launched.sum()) == len(anycasts) + len(multicasts)
        assert int(log.anycasts.sum()) == len(anycasts) + 2
        assert int(log.multicasts.sum()) == len(multicasts)

    def test_column_schema(self, synthetic_log):
        log, _ = synthetic_log
        assert set(log.columns) == set(COLUMN_NAMES)
        sizes = {c.size for c in log.columns.values()}
        assert sizes == {len(log)}

    def test_bad_columns_rejected(self, synthetic_log):
        log, _ = synthetic_log
        with pytest.raises(ValueError):
            OperationLog(dict(log.columns, extra=np.zeros(len(log))))
        short = dict(log.columns)
        short["hops"] = short["hops"][:-1]
        with pytest.raises(ValueError):
            OperationLog(short)

    def test_unknown_attribute_raises(self, synthetic_log):
        log, _ = synthetic_log
        with pytest.raises(AttributeError):
            log.nonexistent_column


class TestReferenceMath:
    """Vectorized aggregations vs brute-force Python over the records."""

    def test_success_rate(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        records = anycasts + [m.anycast for m in multicasts]
        expected = sum(r.status == AnycastStatus.DELIVERED for r in records) / len(records)
        assert log.success_rate() == pytest.approx(expected)

    def test_status_fractions(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        statuses = [r.status for r in anycasts] + [m.anycast.status for m in multicasts]
        counts = Counter(statuses)
        expected = {
            status: counts.get(status, 0) / len(statuses)
            for status in AnycastStatus.TERMINAL
        }
        got = log.status_fractions()
        assert got.keys() == expected.keys()
        for status in expected:
            assert got[status] == pytest.approx(expected[status])

    def test_latency_percentiles(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        latencies = [
            r.latency
            for r in anycasts + [m.anycast for m in multicasts]
            if r.latency is not None
        ]
        expected = 1000.0 * np.percentile(latencies, [50, 90])
        np.testing.assert_allclose(log.latency_percentiles((50, 90)), expected)
        assert log.mean_latency_ms() == pytest.approx(1000.0 * np.mean(latencies))

    def test_hop_fractions(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        hops = [
            r.hops
            for r in anycasts + [m.anycast for m in multicasts]
            if r.status == AnycastStatus.DELIVERED
        ]
        for limit in (1, 3, 6):
            expected = sum(h <= limit for h in hops) / len(hops)
            assert log.hop_fraction_within(limit) == pytest.approx(expected)

    def test_reliability_and_spam(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        _, multicasts = synthetic
        expected_rel = [m.reliability() for m in multicasts]
        expected_spam = [m.spam_ratio() for m in multicasts]
        np.testing.assert_allclose(log.reliability_values(), expected_rel)
        np.testing.assert_allclose(log.spam_ratio_values(), expected_spam)
        expected_worst = [
            m.worst_latency() for m in multicasts if m.worst_latency() is not None
        ]
        np.testing.assert_allclose(log.worst_latencies(), expected_worst)

    def test_grouped_aggregation(self, synthetic_log, synthetic):
        log, bands = synthetic_log
        anycasts, multicasts = synthetic
        rows = list(zip(anycasts + [m.anycast for m in multicasts], bands))
        grouped = log.aggregate(by=("band",), mask=log.launched)
        assert {entry["band"] for entry in grouped} == set(bands)
        for entry in grouped:
            members = [r for r, band in rows if band == entry["band"]]
            assert entry["launched"] == len(members)
            delivered = [r for r in members if r.status == AnycastStatus.DELIVERED]
            assert entry["delivered"] == len(delivered)
            assert entry["success_rate"] == pytest.approx(
                len(delivered) / len(members)
            )
            if delivered:
                assert entry["mean_hops"] == pytest.approx(
                    np.mean([r.hops for r in delivered])
                )
                assert entry["latency_p50_ms"] == pytest.approx(
                    1000.0 * np.percentile([r.latency for r in delivered], 50)
                )

    def test_grouped_by_kind_and_target(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        grouped = log.aggregate(by=("kind", "target"))
        # every (kind, target) combination present in the synthetic data
        seen = {(e["kind"], (e["target"]["lo"], e["target"]["hi"])) for e in grouped}
        expected = {("anycast", (r.target.lo, r.target.hi)) for r in anycasts}
        expected |= {("multicast", (m.target.lo, m.target.hi)) for m in multicasts}
        assert seen == expected
        assert sum(e["rows"] for e in grouped) == len(log)

    def test_aggregate_rejects_float_columns(self, synthetic_log):
        log, _ = synthetic_log
        with pytest.raises(ValueError):
            log.aggregate(by=("latency",))
        with pytest.raises(ValueError):
            log.aggregate(by=())


class TestRoundTrip:
    def test_json(self, synthetic_log, tmp_path):
        log, _ = synthetic_log
        path = tmp_path / "log.json"
        log.to_json(str(path))
        reloaded = OperationLog.from_json(str(path))
        for name in COLUMN_NAMES:
            np.testing.assert_array_equal(
                log.columns[name], reloaded.columns[name], err_msg=name
            )
            assert log.columns[name].dtype == reloaded.columns[name].dtype

    def test_csv(self, synthetic_log, tmp_path):
        log, _ = synthetic_log
        path = tmp_path / "log.csv"
        log.to_csv(str(path))
        reloaded = OperationLog.from_csv(str(path))
        for name in COLUMN_NAMES:
            np.testing.assert_array_equal(
                log.columns[name], reloaded.columns[name], err_msg=name
            )

    def test_csv_header_check(self, synthetic_log, tmp_path):
        log, _ = synthetic_log
        path = tmp_path / "bad.csv"
        path.write_text("not,a,log\n1,2,3\n")
        with pytest.raises(ValueError):
            OperationLog.from_csv(str(path))

    def test_aggregations_survive_reload(self, synthetic_log, tmp_path):
        log, _ = synthetic_log
        path = tmp_path / "log.json"
        log.to_json(str(path))
        reloaded = OperationLog.from_json(str(path))
        assert reloaded.summary() == log.summary()


class TestEdgeCases:
    def test_empty_log(self):
        log = OperationLog.builder().finalize()
        assert len(log) == 0
        assert log.status_fractions() == {}
        assert np.isnan(log.success_rate())
        assert np.isnan(log.mean_latency_ms())
        assert log.aggregate(by=("kind",)) == []
        summary = log.summary()
        assert summary["operations"] == 0

    def test_skipped_rows_excluded_from_metrics(self, synthetic_log, synthetic):
        log, _ = synthetic_log
        anycasts, multicasts = synthetic
        # skipped rows count as rows but never as launched/delivered
        assert len(log) - int(log.launched.sum()) == 2
        fractions = log.status_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_row_decoding(self, synthetic_log, synthetic):
        log, bands = synthetic_log
        anycasts, _ = synthetic
        row = log.row(0)
        assert row["kind"] == "anycast"
        assert row["status"] == anycasts[0].status
        assert row["band"] == bands[0]
        assert row["policy"] == anycasts[0].policy
        skipped = log.row(len(log) - 1)
        assert skipped["status"] == "skipped"
        assert skipped["op_id"] == -1

    def test_from_records_band_propagates(self, synthetic):
        anycasts, _ = synthetic
        log = OperationLog.from_records(anycasts=anycasts[:5], band="high")
        assert all(log.row(i)["band"] == "high" for i in range(5))


class TestVocabularyGuard:
    def test_json_embeds_and_verifies_vocabularies(self, synthetic_log, tmp_path):
        import json

        log, _ = synthetic_log
        path = tmp_path / "log.json"
        log.to_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["vocabularies"]["status"] == list(STATUSES)
        # Simulate a vocabulary drift: the reload must refuse to decode.
        payload["vocabularies"]["policy"] = ["zzz"] + payload["vocabularies"]["policy"]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="vocabularies"):
            OperationLog.from_json(str(path))
