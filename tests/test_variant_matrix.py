"""The paper's full algorithm matrix, exercised end to end.

Section 3.2: three anycast policies × three neighbor-set flavors = nine
anycast algorithms; two multicast approaches × three flavors = six
multicast algorithms.  Every cell must run and produce coherent records
on a realistic (churning) system — this is the coverage net for the
combinatorial API surface the figures sample from.
"""

import itertools

import numpy as np
import pytest

from repro.ops.anycast import POLICY_NAMES
from repro.ops.results import AnycastStatus

SELECTORS = ("hs", "vs", "hs+vs")
MODES = ("flood", "gossip")


class TestNineAnycastVariants:
    @pytest.mark.parametrize(
        "policy,selector", list(itertools.product(sorted(POLICY_NAMES), SELECTORS))
    )
    def test_variant_runs_and_terminates(self, small_simulation, policy, selector):
        records = small_simulation.run_anycast_batch(
            4, (0.6, 1.0), "mid", policy=policy, selector=selector, settle=15.0
        )
        assert records
        for record in records:
            assert record.status in AnycastStatus.TERMINAL
            assert record.policy == policy
            assert record.selector == selector
            if record.delivered:
                assert record.hops is not None
                assert record.latency is not None and record.latency >= 0

    def test_hs_vs_union_dominates_parts(self, small_simulation):
        """HS+VS can only see more candidates than either sliver alone,
        so its delivery rate is (statistically) at least comparable."""
        rates = {}
        for selector in SELECTORS:
            records = small_simulation.run_anycast_batch(
                12, (0.6, 1.0), "mid", policy="retry-greedy", selector=selector,
                settle=15.0,
            )
            rates[selector] = np.mean([r.delivered for r in records])
        assert rates["hs+vs"] >= max(rates["hs"], rates["vs"]) - 0.35


class TestSixMulticastVariants:
    @pytest.mark.parametrize(
        "mode,selector", list(itertools.product(MODES, SELECTORS))
    )
    def test_variant_runs(self, small_simulation, mode, selector):
        record = small_simulation.run_multicast(
            (0.6, 1.0), initiator_band="high", mode=mode, selector=selector,
            settle=20.0,
        )
        assert record.mode == mode
        assert record.selector == selector
        reliability = record.reliability()
        assert np.isnan(reliability) or 0.0 <= reliability <= 1.0
        assert record.data_messages >= 0

    def test_flood_at_least_as_reliable_as_gossip(self, small_simulation):
        flood = [
            small_simulation.run_multicast((0.6, 1.0), initiator_band="high",
                                           mode="flood", settle=15.0).reliability()
            for _ in range(4)
        ]
        gossip = [
            small_simulation.run_multicast((0.6, 1.0), initiator_band="high",
                                           mode="gossip", settle=15.0).reliability()
            for _ in range(4)
        ]
        assert np.nanmean(flood) >= np.nanmean(gossip) - 0.15
