"""Unit tests for trace persistence and statistics."""

import numpy as np
import pytest

from repro.churn.loader import (
    load_trace_npz,
    load_trace_text,
    save_trace_npz,
    save_trace_text,
)
from repro.churn.overnet import OvernetTraceConfig, generate_overnet_trace
from repro.churn.stats import (
    availability_samples,
    churn_events_per_epoch,
    churn_events_per_epoch_scalar,
    online_availability_samples,
    online_population_series,
    online_population_series_scalar,
    summarize_trace,
)
from repro.churn.trace import ChurnTrace


@pytest.fixture
def trace():
    config = OvernetTraceConfig(hosts=60, epochs=40)
    return generate_overnet_trace(config=config, seed=3)


class TestLoaderRoundtrip:
    def test_npz_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(path, trace, 1200.0)
        loaded = load_trace_npz(path)
        original, keys = trace.to_matrix(1200.0)
        rebuilt, loaded_keys = loaded.to_matrix(1200.0)
        assert (original == rebuilt).all()
        assert [str(k) for k in keys] == list(loaded_keys)

    def test_text_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace_text(path, trace, 1200.0)
        loaded = load_trace_text(path)
        original, _ = trace.to_matrix(1200.0)
        rebuilt, _ = loaded.to_matrix(1200.0)
        assert (original == rebuilt).all()

    def test_text_format_is_human_readable(self, trace, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace_text(path, trace, 1200.0)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("avmem-trace-v1")
        assert set(lines[3]) <= {"0", "1"}

    def test_text_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not-a-trace epochs=1 nodes=1 epoch_seconds=10\na\n1\n")
        with pytest.raises(ValueError, match="magic"):
            load_trace_text(path)

    def test_text_truncated_rejected(self, trace, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace_text(path, trace, 1200.0)
        content = path.read_text().splitlines()
        path.write_text("\n".join(content[:-5]) + "\n")
        with pytest.raises(ValueError, match="epochs"):
            load_trace_text(path)

    def test_text_bad_row_width_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(
            "avmem-trace-v1 epochs=1 nodes=2 epoch_seconds=10\na b\n111\n"
        )
        with pytest.raises(ValueError, match="columns"):
            load_trace_text(path)


class TestStats:
    def test_availability_samples_shape(self, trace):
        samples = availability_samples(trace)
        assert samples.shape == (60,)
        assert ((0 <= samples) & (samples <= 1)).all()

    def test_online_samples_match_online_count(self, trace):
        t = trace.horizon / 2
        samples = online_availability_samples(trace, t)
        assert len(samples) == trace.online_count(t)

    def test_population_series(self, trace):
        times, counts = online_population_series(trace, 1200.0)
        assert len(times) == len(counts)
        assert (counts >= 0).all()
        assert (counts <= 60).all()

    def test_population_series_rejects_bad_dt(self, trace):
        with pytest.raises(ValueError):
            online_population_series(trace, 0.0)

    def test_churn_events_nonnegative(self, trace):
        events = churn_events_per_epoch(trace, 1200.0)
        assert len(events) == 39  # epochs - 1
        assert (events >= 0).all()

    def test_churn_events_exist(self, trace):
        events = churn_events_per_epoch(trace, 1200.0)
        assert events.sum() > 0  # the trace actually churns

    def test_summary_consistency(self, trace):
        summary = summarize_trace(trace)
        assert summary.node_count == 60
        assert summary.horizon == trace.horizon
        assert 0.0 <= summary.fraction_below_030 <= 1.0
        assert summary.total_sessions > 0
        assert summary.mean_session_seconds > 0

    def test_summary_as_dict(self, trace):
        data = summarize_trace(trace).as_dict()
        assert "mean_availability" in data
        assert "mean_online_population" in data


class TestBatchScalarParity:
    """The timeline batch paths must agree with the scalar fallbacks."""

    def test_population_series_parity(self, trace):
        times_batch, counts_batch = online_population_series(trace, 1800.0)
        times_scalar, counts_scalar = online_population_series_scalar(trace, 1800.0)
        np.testing.assert_array_equal(times_batch, times_scalar)
        np.testing.assert_array_equal(counts_batch, counts_scalar)

    def test_population_series_scalar_rejects_bad_dt(self, trace):
        with pytest.raises(ValueError):
            online_population_series_scalar(trace, 0.0)

    def test_churn_events_parity(self, trace):
        batch = churn_events_per_epoch(trace, 1200.0)
        scalar = churn_events_per_epoch_scalar(trace, 1200.0)
        np.testing.assert_array_equal(batch, scalar)

    def test_churn_events_parity_off_grid_epoch(self, trace):
        batch = churn_events_per_epoch(trace, 1700.0)
        scalar = churn_events_per_epoch_scalar(trace, 1700.0)
        np.testing.assert_array_equal(batch, scalar)

    def test_churn_events_scalar_rejects_bad_epoch(self, trace):
        with pytest.raises(ValueError):
            churn_events_per_epoch_scalar(trace, -1.0)
