"""Service core: spec, session, store, orchestrator, durability.

The headline assertion is the kill-and-restore durability property: a
session checkpointed mid-workload and restored in a *fresh* build runs
its remaining commands to bit-identical OperationLog records vs an
uninterrupted seeded twin — the event-sourced journal replay consumes
every RNG stream exactly as the original run did.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.ops.log import OperationLog
from repro.ops.plan import OperationPlan
from repro.service import (
    SessionBusyError,
    SessionExistsError,
    SessionOrchestrator,
    SessionSpec,
    SessionStore,
    SimulationSession,
    UnknownSessionError,
)
from repro.service.store import validate_session_id

# Tiny but non-trivial: enough hosts/epochs for churn and deliveries,
# small enough that a session builds in well under a second.
TINY = {
    "settings": {"hosts": 80, "epochs": 12, "seed": 3},
    "warmup": 4000.0,
    "settle": 600.0,
}

PLAN = {
    "items": [
        {
            "kind": "anycast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 4,
            "band": "mid",
            "timing": {"mode": "interval", "spacing": 2.0},
        },
        {
            "kind": "multicast",
            "target": {"kind": "range", "lo": 0.5, "hi": 1.0},
            "count": 1,
            "band": "high",
            "timing": {"mode": "interval", "spacing": 5.0, "phase": 11.0},
        },
    ],
    "settle": 20.0,
    "name": "service-test",
}


def tiny_spec(**overrides) -> SessionSpec:
    payload = {**TINY, **overrides}
    return SessionSpec.from_request(payload)


def make_plan(name="service-test") -> OperationPlan:
    payload = dict(PLAN)
    payload["name"] = name
    return OperationPlan.from_dict(payload)


def assert_logs_identical(a: OperationLog, b: OperationLog) -> None:
    assert set(a.columns) == set(b.columns)
    for column in a.columns:
        np.testing.assert_array_equal(
            a.columns[column], b.columns[column], err_msg=column
        )


@pytest.fixture(scope="module")
def built_session():
    """One warmed-up session shared by read-only tests."""
    return SimulationSession.build("shared", tiny_spec())


class TestSessionSpec:
    def test_round_trip(self):
        spec = tiny_spec()
        again = SessionSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again == spec

    def test_scale_defaults(self):
        spec = SessionSpec.from_request({"scale": "small"})
        assert spec.settings.hosts == 220
        assert spec.warmup == 24600.0
        assert spec.settle == 2400.0

    def test_settings_override_scale(self):
        spec = SessionSpec.from_request({"scale": "small", "settings": {"hosts": 99}})
        assert spec.settings.hosts == 99

    def test_inline_scenario_round_trips(self):
        from repro.scenarios.registry import get_scenario

        inline = get_scenario("stable-core").as_dict()
        spec = tiny_spec(scenario=inline)
        assert spec.scenario is not None
        again = SessionSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert again.scenario == spec.scenario

    def test_registered_scenario_name(self):
        spec = tiny_spec(scenario="stable-core")
        assert spec.scenario is None
        assert spec.settings.scenario == "stable-core"

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown session fields"):
            SessionSpec.from_request({"bogus": 1})

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            SessionSpec.from_request({"scale": "galactic"})

    def test_rejects_bad_settings_field(self):
        with pytest.raises(ValueError, match="bad settings"):
            SessionSpec.from_request({"settings": {"warp": 9}})

    def test_validates_warmup_window(self):
        with pytest.raises(ValueError, match="settle"):
            tiny_spec(warmup=100.0, settle=200.0)


class TestSessionIds:
    @pytest.mark.parametrize("good", ["a", "run-7", "user.session_1", "A" * 128])
    def test_accepts(self, good):
        assert validate_session_id(good) == good

    @pytest.mark.parametrize(
        "bad", ["", "a/b", "../x", "a b", "x" * 129, "ütf", None, 7]
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_session_id(bad)


class TestSimulationSession:
    def test_commands_journal_and_log(self):
        session = SimulationSession.build("s", tiny_spec())
        log = session.run_plan(make_plan())
        assert len(log) == 5
        before = session.simulation.sim.now
        result = session.advance(100.0)
        assert result["now"] == pytest.approx(before + 100.0)
        stepped = session.step(10)
        assert stepped["events"] <= 10
        assert [e["kind"] for e in session.journal] == ["plan", "advance", "step"]

    def test_combined_log_concatenates(self):
        session = SimulationSession.build("s", tiny_spec())
        first = session.run_plan(make_plan("one"))
        second = session.run_plan(make_plan("two"))
        combined = session.combined_log()
        assert len(combined) == len(first) + len(second)
        assert_logs_identical(
            combined, OperationLog.concat([first, second])
        )

    def test_aggregations_shape(self, built_session):
        payload = built_session.aggregations(by=["kind"])
        assert payload["plans"] == len(built_session.logs)
        assert "summary" in payload
        if payload["rows"]:
            assert {g["kind"] for g in payload["groups"]} <= {"anycast", "multicast"}

    def test_advance_rejects_past_horizon(self, built_session):
        with pytest.raises(ValueError, match="horizon"):
            built_session._advance(1e12, record=False)

    def test_private_recorder_not_global(self):
        from repro.telemetry import TELEMETRY

        session = SimulationSession.build("s", tiny_spec())
        assert session.telemetry is not TELEMETRY
        assert session.telemetry.enabled
        assert session.simulation.telemetry is session.telemetry
        snapshot = session.telemetry_snapshot()
        assert snapshot.find_span("sim.setup") is not None

    def test_telemetry_disabled_when_requested(self):
        session = SimulationSession.build("s", tiny_spec(telemetry=False))
        assert not session.telemetry.enabled


class TestDurability:
    def test_restore_is_bit_identical(self, tmp_path):
        """The acceptance criterion: snapshot mid-workload, restore in a
        fresh build, run to completion — identical records and
        aggregations vs the uninterrupted twin."""
        spec = tiny_spec()
        store = SessionStore(str(tmp_path / "state"))

        # Interrupted life: plan, advance, checkpoint ... restore, plan.
        original = SimulationSession.build("x", spec)
        original.run_plan(make_plan("first"))
        original.advance(150.0)
        store.checkpoint(original)
        loaded_spec, journal, manifest = store.load("x")
        assert manifest["commands"] == 2
        restored = SimulationSession.build("x", loaded_spec, journal=journal)
        assert restored.simulation.sim.now == original.simulation.sim.now
        assert_logs_identical(restored.logs[0], original.logs[0])

        # Uninterrupted twin runs the same command sequence end to end.
        twin = SimulationSession.build("x", spec)
        twin.run_plan(make_plan("first"))
        twin.advance(150.0)

        final_restored = restored.run_plan(make_plan("second"))
        final_twin = twin.run_plan(make_plan("second"))
        assert_logs_identical(final_restored, final_twin)
        assert_logs_identical(restored.combined_log(), twin.combined_log())
        assert (
            restored.combined_log().summary() == twin.combined_log().summary()
        )

    def test_stored_logs_match_replayed(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = SimulationSession.build("x", tiny_spec())
        session.run_plan(make_plan())
        store.checkpoint(session)
        stored = store.load_log("x", 0)
        assert_logs_identical(stored, session.logs[0])

    def test_checkpoint_files(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = SimulationSession.build("x", tiny_spec())
        session.run_plan(make_plan())
        directory = store.checkpoint(session)
        names = sorted(os.listdir(directory))
        assert names == ["journal.json", "logs", "manifest.json", "telemetry.json"]
        manifest = store.load_manifest("x")
        assert manifest["format"] == "avmem-session-v1"
        assert manifest["plans"] == 1


class TestSessionStore:
    def test_unknown_session(self, tmp_path):
        store = SessionStore(str(tmp_path))
        with pytest.raises(UnknownSessionError):
            store.load("nope")

    def test_delete(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = SimulationSession.build("x", tiny_spec())
        store.checkpoint(session)
        assert store.list_ids() == ["x"]
        assert store.delete("x")
        assert store.list_ids() == []
        assert not store.delete("x")

    def test_describe(self, tmp_path):
        store = SessionStore(str(tmp_path))
        session = SimulationSession.build("x", tiny_spec())
        session.run_plan(make_plan())
        store.checkpoint(session)
        row = store.describe("x")
        assert row["status"] == "checkpointed"
        assert row["commands"] == 1
        assert row["plans"] == 1


class TestOrchestrator:
    def test_create_get_evict_restore(self, tmp_path):
        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        spec = tiny_spec()
        created = orch.create("a", spec)
        assert orch.get("a") is created
        orch.run_command("a", lambda s: s.run_plan(make_plan()))
        orch.evict("a")
        assert created.evicted
        rows = orch.list_sessions()
        assert [(r["id"], r["status"]) for r in rows] == [("a", "checkpointed")]
        # run_command transparently restores
        rows_after = orch.run_command("a", lambda s: s.aggregations())
        assert rows_after["plans"] == 1
        assert orch.get("a") is not created

    def test_duplicate_create_rejected(self, tmp_path):
        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        orch.create("a", tiny_spec())
        with pytest.raises(SessionExistsError):
            orch.create("a", tiny_spec())
        orch.evict("a")
        # still taken by the checkpoint
        with pytest.raises(SessionExistsError):
            orch.create("a", tiny_spec())

    def test_unknown_session(self, tmp_path):
        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        with pytest.raises(UnknownSessionError):
            orch.get("missing")
        with pytest.raises(UnknownSessionError):
            orch.evict("missing")
        with pytest.raises(UnknownSessionError):
            orch.delete("missing")

    def test_evict_busy_raises(self, tmp_path):
        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        session = orch.create("a", tiny_spec())
        entered = threading.Event()
        release = threading.Event()

        def hold(s):
            entered.set()
            release.wait(5.0)
            return None

        worker = threading.Thread(
            target=lambda: orch.run_command("a", hold), daemon=True
        )
        worker.start()
        assert entered.wait(5.0)
        with pytest.raises(SessionBusyError):
            orch.evict("a")
        release.set()
        worker.join(5.0)
        orch.evict("a")  # now idle: succeeds
        assert session.evicted

    def test_command_queued_across_evict_lands_on_restored(self, tmp_path):
        """A command that was waiting while the eviction won the lock
        must re-fetch (restore) instead of mutating the zombie."""
        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        orch.create("a", tiny_spec())
        orch.run_command("a", lambda s: s.run_plan(make_plan()))
        first = orch.get("a")
        results = []
        started = threading.Event()

        def late_command():
            started.set()
            results.append(orch.run_command("a", lambda s: (s, s.aggregations())))

        # Evict first, then issue the command: it must restore.
        orch.evict("a")
        worker = threading.Thread(target=late_command, daemon=True)
        worker.start()
        assert started.wait(5.0)
        worker.join(10.0)
        session, payload = results[0]
        assert session is not first
        assert payload["plans"] == 1

    def test_concurrent_commands_isolated_sessions(self, tmp_path):
        """Same-seed sessions driven concurrently produce the same
        records a solo run does — no RNG cross-talk between sessions."""
        spec = tiny_spec()
        solo = SimulationSession.build("solo", spec)
        solo_log = solo.run_plan(make_plan())

        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        ids = ["c1", "c2", "c3"]
        for session_id in ids:
            orch.create(session_id, spec)
        logs = {}
        errors = []

        def drive(session_id):
            try:
                logs[session_id] = orch.run_command(
                    session_id, lambda s: s.run_plan(make_plan())
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((session_id, exc))

        threads = [
            threading.Thread(target=drive, args=(session_id,)) for session_id in ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors
        for session_id in ids:
            assert_logs_identical(logs[session_id], solo_log)

    def test_checkpoint_all_and_sweep(self, tmp_path):
        orch = SessionOrchestrator(SessionStore(str(tmp_path)), idle_timeout=0.0)
        orch.create("a", tiny_spec())
        orch.create("b", tiny_spec())
        assert sorted(orch.checkpoint_all()) == ["a", "b"]
        # both still live after checkpoint
        assert {r["status"] for r in orch.list_sessions()} == {"live"}
        evicted = orch.sweep_idle()
        assert sorted(evicted) == ["a", "b"]
        assert {r["status"] for r in orch.list_sessions()} == {"checkpointed"}

    def test_delete_live_and_stored(self, tmp_path):
        orch = SessionOrchestrator(SessionStore(str(tmp_path)))
        orch.create("a", tiny_spec())
        orch.delete("a")
        with pytest.raises(UnknownSessionError):
            orch.get("a")


class TestOperationLogConcat:
    def test_empty(self):
        assert len(OperationLog.concat([])) == 0

    def test_single_passthrough(self, built_session):
        log = (
            built_session.logs[0]
            if built_session.logs
            else OperationLog.builder().finalize()
        )
        assert OperationLog.concat([log]) is log

    def test_summary_over_concat(self):
        session = SimulationSession.build("s", tiny_spec())
        a = session.run_plan(make_plan("a"))
        b = session.run_plan(make_plan("b"))
        combined = OperationLog.concat([a, b])
        assert combined.summary()["operations"] == len(a) + len(b)
        assert (
            combined.summary()["launched"]
            == a.summary()["launched"] + b.summary()["launched"]
        )
