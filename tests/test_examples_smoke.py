"""Examples stay runnable: execute each script in a subprocess.

Marked slow — each example builds and warms a 220-host simulation
(~10-20 s).  A broken example is a broken front door, so the cost is
worth one marked test per script.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
