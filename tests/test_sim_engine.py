"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import PeriodicTask, SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now == 100.0

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(5.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_non_callable_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.schedule(1.0, "not callable")

    def test_callback_args_passed(self, sim):
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]

    def test_events_scheduled_during_run_execute(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        assert handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_returns_false_after_firing(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not handle.cancel()

    def test_double_cancel_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_event_state_flags(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending and not handle.fired and not handle.cancelled
        sim.run()
        assert handle.fired and not handle.pending


class TestRunUntil:
    def test_runs_only_events_before_deadline(self, sim):
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule(5.0, order.append, "b")
        executed = sim.run_until(3.0)
        assert executed == 1
        assert order == ["a"]
        assert sim.now == 3.0

    def test_clock_advances_even_with_no_events(self, sim):
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_event_exactly_at_deadline_fires(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, 1)
        sim.run_until(3.0)
        assert fired == [1]

    def test_backwards_run_until_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_remaining_events_fire_on_later_run(self, sim):
        order = []
        sim.schedule(5.0, order.append, "late")
        sim.run_until(1.0)
        sim.run()
        assert order == ["late"]


class TestRunControls:
    def test_max_events(self, sim):
        order = []
        for i in range(5):
            sim.schedule(float(i + 1), order.append, i)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert order == [0, 1, 2]

    def test_stop_inside_callback(self, sim):
        order = []

        def stopping():
            order.append("first")
            sim.stop()

        sim.schedule(1.0, stopping)
        sim.schedule(2.0, order.append, "second")
        sim.run()
        assert order == ["first"]
        sim.run()
        assert order == ["first", "second"]

    def test_events_processed_counter(self, sim):
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_step_returns_false_when_empty(self, sim):
        assert not sim.step()

    def test_peek_time(self, sim):
        assert sim.peek_time() is None
        sim.schedule(2.5, lambda: None)
        assert sim.peek_time() == 2.5

    def test_peek_skips_cancelled(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.peek_time() == 2.0

    def test_pending_count_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count == 1
        assert keep.pending


class TestPeriodicTask:
    def test_fires_every_period(self, sim):
        times = []
        PeriodicTask(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_custom_start_delay(self, sim):
        times = []
        PeriodicTask(sim, 10.0, lambda: times.append(sim.now), start_delay=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_stop_halts_future_firings(self, sim):
        times = []
        task = PeriodicTask(sim, 10.0, lambda: times.append(sim.now))
        sim.run_until(15.0)
        task.stop()
        sim.run_until(50.0)
        assert times == [10.0]
        assert task.stopped

    def test_stop_from_inside_callback(self, sim):
        count = []
        task = PeriodicTask(sim, 5.0, lambda: (count.append(1), task.stop()))
        sim.run_until(50.0)
        assert len(count) == 1

    def test_fire_count(self, sim):
        task = PeriodicTask(sim, 1.0, lambda: None)
        sim.run_until(5.5)
        assert task.fire_count == 5

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=0.5)

    def test_jitter_varies_intervals(self, sim, rng):
        times = []
        PeriodicTask(sim, 10.0, lambda: times.append(sim.now), jitter=3.0, rng=rng)
        sim.run_until(200.0)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # not all gaps identical
        assert all(7.0 <= g <= 13.0 for g in gaps)

    def test_jitter_applies_to_first_firing(self, sim, rng):
        """Regression: with ``start_delay=None`` the first firing must be
        jittered like every later interval — otherwise an unstaggered
        population that requested jitter still fires its first round in
        lockstep at exactly one period."""
        times = []
        PeriodicTask(sim, 100.0, lambda: times.append(sim.now), jitter=50.0, rng=rng)
        sim.run_until(200.0)
        first = times[0]
        assert 50.0 <= first <= 150.0
        assert first != 100.0

    def test_first_firings_staggered_across_population(self, sim, rng):
        """Many tasks sharing period+jitter must not all fire first at
        the same instant."""
        for _ in range(20):
            PeriodicTask(sim, 100.0, (lambda: None), jitter=40.0, rng=rng)
        # Collect the scheduled first-fire times straight off the queue.
        firsts = sorted(entry.event.time for entry in sim._queue)
        assert len(set(firsts)) > 1
        assert all(60.0 <= t <= 140.0 for t in firsts)
