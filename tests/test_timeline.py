"""Property tests for the columnar :class:`ChurnTimeline`.

The timeline is the batch-query backend behind ``ChurnTrace``, the
monitoring oracle, and every compiled scenario, so its contract is
equivalence: for any session layout and any query, the batched answer
must match the scalar :class:`NodeSchedule` answer entry for entry.
Hypothesis drives both the layouts (including overlapping/touching
inputs that exercise normalization) and the query times (including
boundary values).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.timeline import ChurnTimeline
from repro.churn.trace import ChurnTrace, NodeSchedule

HORIZON = 1000.0

# Raw, possibly overlapping/touching/zero-length intervals inside the
# horizon; the timeline and NodeSchedule must normalize them identically.
interval = st.tuples(
    st.floats(0.0, HORIZON, allow_nan=False, width=32),
    st.floats(0.0, HORIZON, allow_nan=False, width=32),
).map(lambda pair: (min(pair), max(pair)))

interval_lists = st.lists(st.lists(interval, max_size=8), min_size=1, max_size=6)

query_times = st.lists(
    st.one_of(
        st.floats(0.0, HORIZON, allow_nan=False, width=32),
        st.sampled_from([0.0, 1.0, HORIZON / 2, HORIZON - 1.0, HORIZON]),
    ),
    min_size=1,
    max_size=8,
)


def make_pair(lists):
    """(timeline, parallel NodeSchedules) over the same interval lists."""
    timeline = ChurnTimeline.from_interval_lists(lists, HORIZON)
    schedules = [NodeSchedule(intervals) for intervals in lists]
    return timeline, schedules


class TestStructure:
    @given(lists=interval_lists)
    @settings(max_examples=100, deadline=None)
    def test_sessions_disjoint_sorted_per_node(self, lists):
        timeline, schedules = make_pair(lists)
        timeline.validate()
        # Normalization parity: the per-node sessions equal NodeSchedule's.
        for i, schedule in enumerate(schedules):
            starts, ends = timeline.sessions_of(i)
            assert tuple(zip(starts.tolist(), ends.tolist())) == schedule.intervals

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ChurnTimeline(2, 100.0, np.array([0]), np.array([0.0, 1.0]), np.array([2.0]))
        with pytest.raises(ValueError):
            ChurnTimeline(1, 100.0, np.array([3]), np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            ChurnTimeline(1, 100.0, np.array([0]), np.array([5.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            ChurnTimeline(1, 0.0, np.array([], dtype=int), np.array([]), np.array([]))

    def test_out_of_horizon_sessions_tolerated_but_fail_validate(self):
        # ChurnTrace always accepted schedules that spill past the
        # horizon; the timeline must answer for them too, while
        # validate() (the scenario-compilation contract) still objects.
        timeline = ChurnTimeline(
            1, 50.0, np.array([0]), np.array([-10.0]), np.array([100.0])
        )
        assert timeline.online_mask(25.0)[0]
        assert timeline.is_online_array(np.array([0]), 80.0)[0]
        assert timeline.uptime_array(np.array([0]), 50.0)[0] == pytest.approx(50.0)
        assert timeline.lifetime_availability_array()[0] == pytest.approx(1.0)
        with pytest.raises(AssertionError):
            timeline.validate()

    def test_trace_with_overlong_schedule_answers_batch_queries(self):
        trace = ChurnTrace({"a": NodeSchedule([(0.0, 100.0)])}, horizon=50.0)
        assert trace.online_nodes(10.0) == ["a"]
        assert trace.online_count(60.0) == 1
        assert trace.availabilities()["a"] == pytest.approx(1.0)

    def test_merges_overlapping_sessions(self):
        timeline = ChurnTimeline(
            1, 100.0,
            np.array([0, 0, 0]),
            np.array([0.0, 5.0, 30.0]),
            np.array([10.0, 20.0, 40.0]),
        )
        starts, ends = timeline.sessions_of(0)
        assert starts.tolist() == [0.0, 30.0]
        assert ends.tolist() == [20.0, 40.0]

    def test_empty_timeline(self):
        timeline = ChurnTimeline(
            3, 50.0, np.array([], dtype=int), np.array([]), np.array([])
        )
        timeline.validate()
        assert not timeline.online_mask(10.0).any()
        assert timeline.availability_array(np.arange(3), 25.0).tolist() == [0.0] * 3


class TestQueryParity:
    @given(lists=interval_lists, times=query_times)
    @settings(max_examples=120, deadline=None)
    def test_presence_matches_schedules(self, lists, times):
        timeline, schedules = make_pair(lists)
        nodes = np.arange(len(lists), dtype=np.int64)
        for t in times:
            mask = timeline.online_mask(t)
            batch = timeline.is_online_array(nodes, t)
            scalar = [s.is_online(t) for s in schedules]
            assert mask.tolist() == scalar
            assert batch.tolist() == scalar

    @given(lists=interval_lists, times=query_times)
    @settings(max_examples=120, deadline=None)
    def test_uptime_and_availability_match_schedules(self, lists, times):
        timeline, schedules = make_pair(lists)
        nodes = np.arange(len(lists), dtype=np.int64)
        for t in times:
            up = timeline.uptime_array(nodes, t)
            scalar_up = [s.uptime(t) for s in schedules]
            assert np.allclose(up, scalar_up, rtol=0.0, atol=1e-6)
            av = timeline.availability_array(nodes, t)
            scalar_av = [s.availability(t) for s in schedules]
            assert np.allclose(av, scalar_av, rtol=0.0, atol=1e-9)

    @given(lists=interval_lists, times=query_times, window=st.floats(1.0, HORIZON))
    @settings(max_examples=100, deadline=None)
    def test_windowed_availability_matches_schedules(self, lists, times, window):
        timeline, schedules = make_pair(lists)
        nodes = np.arange(len(lists), dtype=np.int64)
        for t in times:
            got = timeline.windowed_availability_array(nodes, t, window)
            since = max(0.0, t - window)
            want = [s.availability(t, since) for s in schedules]
            assert np.allclose(got, want, rtol=0.0, atol=1e-9)

    @given(lists=interval_lists)
    @settings(max_examples=60, deadline=None)
    def test_lifetime_availability(self, lists):
        timeline, schedules = make_pair(lists)
        got = timeline.lifetime_availability_array()
        want = [s.availability(HORIZON) for s in schedules]
        assert np.allclose(got, want, rtol=0.0, atol=1e-9)

    def test_mixed_per_query_times(self):
        timeline, schedules = make_pair([[(0.0, 100.0)], [(50.0, 80.0)]])
        got = timeline.is_online_array(np.array([0, 1]), np.array([120.0, 60.0]))
        assert got.tolist() == [False, True]
        up = timeline.uptime_array(np.array([0, 1]), np.array([120.0, 60.0]))
        assert np.allclose(up, [100.0, 10.0])

    def test_negative_time_is_offline_with_zero_uptime(self):
        timeline, _ = make_pair([[(0.0, 10.0)]])
        assert not timeline.is_online_array(np.array([0]), -5.0)[0]
        assert timeline.uptime_array(np.array([0]), 0.0, 0.0)[0] == 0.0

    def test_uptime_rejects_reversed_window(self):
        timeline, _ = make_pair([[(0.0, 10.0)]])
        with pytest.raises(ValueError):
            timeline.uptime_array(np.array([0]), 1.0, since=5.0)


class TestMatrixRoundTrip:
    @given(
        matrix=st.lists(
            st.lists(st.booleans(), min_size=3, max_size=3),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_from_matrix_matches_trace(self, matrix):
        arr = np.array(matrix, dtype=bool)
        epoch = 10.0
        timeline = ChurnTimeline.from_matrix(arr, epoch)
        timeline.validate()
        trace = ChurnTrace.from_matrix(arr, ["a", "b", "c"], epoch)
        probes = np.concatenate([
            (np.arange(arr.shape[0]) + 0.5) * epoch,
            np.arange(arr.shape[0] + 1, dtype=float) * epoch,
        ])
        for t in probes:
            assert timeline.online_mask(t).tolist() == [
                trace.is_online(k, t) for k in ("a", "b", "c")
            ]

    def test_availability_matrix_shapes_and_values(self):
        timeline, schedules = make_pair([[(0.0, 500.0)], [(250.0, 1000.0)]])
        times = [100.0, 500.0, 900.0]
        raw = timeline.availability_matrix(times)
        assert raw.shape == (3, 2)
        for row, t in enumerate(times):
            for i, schedule in enumerate(schedules):
                assert raw[row, i] == pytest.approx(schedule.availability(t))
        aged = timeline.availability_matrix(times, window=200.0)
        for row, t in enumerate(times):
            for i, schedule in enumerate(schedules):
                want = schedule.availability(t, max(0.0, t - 200.0))
                assert aged[row, i] == pytest.approx(want)

    def test_online_mask_matrix(self):
        timeline, _ = make_pair([[(0.0, 500.0)], [(250.0, 1000.0)]])
        matrix = timeline.online_mask_matrix([100.0, 600.0])
        assert matrix.tolist() == [[True, False], [False, True]]


class TestSeriesQueries:
    """The whole-population series batch paths (stats ride these)."""

    def test_online_count_series_matches_online_count(self):
        timeline, _ = make_pair(
            [[(0.0, 500.0)], [(250.0, 1000.0)], [(100.0, 300.0), (600.0, 900.0)]]
        )
        times = np.array([0.0, 99.9, 250.0, 500.0, 650.0, 999.0, 1000.0])
        counts = timeline.online_count_series(times)
        assert counts.tolist() == [timeline.online_count(t) for t in times]

    def test_online_mask_matrix_matches_online_mask(self):
        timeline, _ = make_pair(
            [[(0.0, 500.0)], [(250.0, 1000.0)], [(100.0, 300.0), (600.0, 900.0)]]
        )
        times = [0.0, 250.0, 550.0, 899.9, 1000.0]
        matrix = timeline.online_mask_matrix(times)
        for row, t in enumerate(times):
            assert matrix[row].tolist() == timeline.online_mask(t).tolist()

    def test_online_mask_matrix_unsorted_times(self):
        timeline, _ = make_pair([[(0.0, 500.0)], [(250.0, 1000.0)]])
        matrix = timeline.online_mask_matrix([600.0, 100.0])
        assert matrix.tolist() == [[False, True], [True, False]]

    def test_empty_times(self):
        timeline, _ = make_pair([[(0.0, 500.0)]])
        assert timeline.online_mask_matrix([]).shape == (0, 1)
        assert timeline.online_count_series([]).size == 0
