"""Failure-injection tests: the system under hostile conditions.

Mass churn mid-operation, monitoring outages, pathological caches —
the reproduction must degrade the way a distributed system should
(losing messages, not raising exceptions or corrupting state).
"""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.config import AvmemConfig
from repro.core.ids import make_node_ids
from repro.core.node import AvmemNode
from repro.core.predicates import NodeDescriptor, random_overlay_predicate
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView
from repro.ops.engine import OperationEngine
from repro.ops.results import AnycastStatus
from repro.ops.spec import TargetSpec
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


def build_mass_churn_system(n=40, die_at=1000.0, survivors=5, rng=None):
    """Everyone online from 0; all but ``survivors`` nodes die at
    ``die_at`` (a correlated failure / partition event)."""
    rng = rng if rng is not None else np.random.default_rng(3)
    ids = make_node_ids(n)
    schedules = {}
    for i, node in enumerate(ids):
        end = 1e9 if i < survivors else die_at
        schedules[node] = NodeSchedule([(0.0, end)])
    trace = ChurnTrace(schedules, horizon=1e9)
    sim = Simulator()
    network = Network(sim, latency=ConstantLatency(0.05), presence=trace, rng=rng)
    avs = list(np.linspace(0.1, 0.95, n))
    pdf = AvailabilityPdf.from_samples(avs, online_weighted=False)
    predicate = random_overlay_predicate(pdf, probability=1.0)

    class Fixed:
        def query(self, node):
            return float(avs[ids.index(node)])

    service = Fixed()
    coarse = GlobalSampleView(sim, ids, n - 1, rng=rng, presence=trace, stale_fraction=0.0)
    config = AvmemConfig()
    nodes = {}
    for node_id in ids:
        nodes[node_id] = AvmemNode(
            node_id, sim, network, predicate, config,
            CachedAvailabilityView(service, sim), coarse, rng=rng,
        )
    engine = OperationEngine(
        sim, network, nodes, config, truth_availability=service.query, rng=rng
    )
    descriptors = [NodeDescriptor(node, service.query(node)) for node in ids]
    for node_id, node in nodes.items():
        node.bootstrap_from([d for d in descriptors if d.node != node_id])
    return sim, network, nodes, engine, ids, trace


class TestMassChurn:
    def test_anycast_during_mass_failure_terminates(self):
        sim, _, nodes, engine, ids, _ = build_mass_churn_system(die_at=1000.0)
        sim.run_until(999.9)  # operations launched just before the event
        records = [
            engine.anycast(ids[0], TargetSpec.range(0.9, 0.95), policy="retry-greedy")
            for _ in range(5)
        ]
        sim.run_until(1030.0)
        engine.finalize()
        for record in records:
            assert record.status in AnycastStatus.TERMINAL

    def test_multicast_reliability_collapses_gracefully(self):
        sim, _, nodes, engine, ids, _ = build_mass_churn_system(
            die_at=1000.0, survivors=3
        )
        sim.run_until(999.5)
        record = engine.multicast(ids[0], TargetSpec.range(0.5, 1.0), mode="flood")
        sim.run_until(1030.0)
        # Eligibility was sampled pre-failure; deliveries mostly died.
        assert record.reliability() <= 1.0
        assert len(record.deliveries) <= len(record.eligible)

    def test_surviving_nodes_keep_operating(self):
        sim, _, nodes, engine, ids, _ = build_mass_churn_system(
            n=40, die_at=1000.0, survivors=8
        )
        sim.run_until(2000.0)
        for node in ids[:8]:
            nodes[node].refresh_step()  # prunes the dead
        record = engine.anycast(
            ids[0],
            TargetSpec.range(0.1, 0.3),  # survivors 0..7 span low avs
            policy="retry-greedy",
        )
        sim.run_until(2030.0)
        record.finalize()
        assert record.status in AnycastStatus.TERMINAL

    def test_refresh_prunes_all_dead_neighbors(self):
        sim, network, nodes, engine, ids, _ = build_mass_churn_system(
            survivors=5, die_at=1000.0
        )
        sim.run_until(2000.0)
        survivor = nodes[ids[0]]
        evicted = survivor.refresh_step()
        assert evicted >= 30  # all dead neighbors dropped in one round
        for entry in survivor.lists.all_entries():
            assert network.is_online(entry.node)


class TestMonitoringPathologies:
    def test_extreme_noise_still_bounded(self):
        """A broken monitoring service (huge noise) must still return
        availabilities in [0, 1]."""
        from repro.monitor.oracle import OracleAvailability

        ids = make_node_ids(5)
        schedules = {node: NodeSchedule([(0.0, 1e6)]) for node in ids}
        trace = ChurnTrace(schedules, horizon=1e6)
        sim = Simulator()
        sim.run_until(1000.0)
        oracle = OracleAvailability(trace, sim, noise_std=5.0, seed=2)
        for node in ids:
            assert 0.0 <= oracle.query(node) <= 1.0

    def test_coarse_quantization_degrades_not_breaks(self):
        from repro.monitor.oracle import OracleAvailability

        ids = make_node_ids(5)
        schedules = {node: NodeSchedule([(0.0, 500.0)]) for node in ids}
        trace = ChurnTrace(schedules, horizon=1e6)
        sim = Simulator()
        sim.run_until(1000.0)
        oracle = OracleAvailability(trace, sim, quantization=0.5)
        assert oracle.query(ids[0]) in (0.0, 0.5, 1.0)

    def test_verifier_with_empty_system_cache(self):
        """Verification works from a cold cache (fetches on demand)."""
        sim, _, nodes, engine, ids, _ = build_mass_churn_system()
        verifier = nodes[ids[1]].verifier
        result = verifier.verify(ids[2])
        assert result.accepted in (True, False)
        assert 0.0 <= result.threshold <= 1.0


class TestGossipUnderChurn:
    def test_gossip_rounds_survive_node_death(self):
        """A gossiping node dying mid-rounds must not break the engine."""
        sim, _, nodes, engine, ids, _ = build_mass_churn_system(
            n=30, die_at=1001.5, survivors=2
        )
        sim.run_until(999.0)
        record = engine.multicast(ids[5], TargetSpec.range(0.5, 1.0), mode="gossip")
        sim.run_until(1020.0)  # gossip rounds straddle the mass failure
        assert record.data_messages >= 0  # engine stayed consistent

    def test_duplicate_gossip_suppressed(self):
        sim, _, nodes, engine, ids, _ = build_mass_churn_system(n=25, die_at=1e8)
        record = engine.multicast(ids[0], TargetSpec.range(0.3, 1.0), mode="gossip")
        sim.run_until(60.0)
        assert len(record.deliveries) == len(set(record.deliveries))
        # Every delivered node was counted exactly once despite fanout overlap.
        assert record.duplicate_receptions >= 0
