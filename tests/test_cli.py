"""Tests for the command-line interface."""

import json
import math

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "fig7", "--scale", "small"])
        assert args.command == "figure"
        assert args.figure_id == "fig7"
        assert args.scale == "small"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_trace_generation_text(self, tmp_path, capsys):
        out = tmp_path / "t.txt"
        code = main([
            "trace", "--hosts", "40", "--epochs", "12", "--seed", "4",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "mean_availability" in captured

    def test_trace_generation_npz(self, tmp_path):
        out = tmp_path / "t.npz"
        assert main([
            "trace", "--hosts", "40", "--epochs", "12", "--out", str(out),
        ]) == 0
        from repro.churn.loader import load_trace_npz

        trace = load_trace_npz(out)
        assert trace.node_count == 40

    def test_snapshot_command(self, capsys):
        assert main(["snapshot", "--scale", "small", "--seed", "6"]) == 0
        captured = capsys.readouterr().out
        assert "online nodes" in captured
        assert "band" in captured

    def test_figure_command_runs(self, capsys):
        assert main(["figure", "fig3", "--scale", "small", "--seed", "6"]) == 0
        captured = capsys.readouterr().out
        assert "fig3" in captured
        assert "slope" in captured


class TestScenarioReportRoundTrip:
    def test_report_json_round_trips(self, tmp_path, capsys):
        """scenario run --json output rebuilds into an equal report via
        ScenarioRunReport.from_dict (scrubbed None -> NaN included)."""
        from repro.experiments.harness import ScenarioRunReport

        out_path = tmp_path / "report.json"
        assert main([
            "scenario", "run", "flash-crowd", "--scale", "small", "--seed", "3",
            "--json", str(out_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        report = ScenarioRunReport.from_dict(payload)
        assert report.scenario == "flash-crowd"
        assert report.log is None
        # as_dict of the rebuilt report must reproduce the file exactly.
        assert report.as_dict() == payload

    def test_from_dict_restores_nan(self):
        from repro.experiments.harness import ScenarioRunReport

        report = ScenarioRunReport(
            scenario="s", scale="small", seed=0, hosts=10,
            online_at_start=5, mean_lifetime_availability=0.5,
        )
        rebuilt = ScenarioRunReport.from_dict(
            json.loads(json.dumps(report.as_dict()))
        )
        assert math.isnan(rebuilt.anycast_mean_hops)
        # NaN breaks dataclass ==; the scrubbed dict form is the
        # canonical comparison.
        assert rebuilt.as_dict() == report.as_dict()


class TestTelemetryCli:
    @pytest.fixture(autouse=True)
    def _reset_telemetry(self):
        from repro.telemetry import TELEMETRY

        yield
        TELEMETRY.disable()
        TELEMETRY.attach_progress(None)
        TELEMETRY.reset()

    def test_ops_run_telemetry_and_summarize(self, tmp_path, capsys):
        from repro.telemetry import TELEMETRY, TelemetrySnapshot

        tel_path = tmp_path / "tel.json"
        assert main([
            "ops", "run", "--scale", "small", "--seed", "5",
            "--anycasts", "3", "--multicasts", "1",
            "--telemetry", str(tel_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "span coverage" in out
        assert not TELEMETRY.enabled  # recorder handed back disabled
        snapshot = TelemetrySnapshot.from_json(str(tel_path))
        assert snapshot.find_span("ops.run") is not None
        assert snapshot.find_span("ops.run.ops.execute") is not None
        assert snapshot.counters.get("sim.events", 0) > 0
        assert snapshot.span_coverage() >= 0.9

        assert main(["telemetry", "summarize", str(tel_path)]) == 0
        rendered = capsys.readouterr().out
        assert "ops.run" in rendered
        assert "wall-clock" in rendered

    def test_scenario_run_telemetry_coverage(self, tmp_path, capsys):
        from repro.telemetry import TelemetrySnapshot

        tel_path = tmp_path / "tel.json"
        assert main([
            "scenario", "run", "flash-crowd", "--scale", "small", "--seed", "1",
            "--telemetry", str(tel_path),
        ]) == 0
        capsys.readouterr()
        snapshot = TelemetrySnapshot.from_json(str(tel_path))
        assert snapshot.span_coverage() >= 0.9
        assert snapshot.find_span("scenario.run.scenario.build") is not None
        assert snapshot.find_span("scenario.run.scenario.workload") is not None
        # Exact JSON round-trip through a second write.
        second = tmp_path / "tel2.json"
        snapshot.to_json(str(second))
        assert TelemetrySnapshot.from_json(str(second)) == snapshot

    def test_summarize_diff_two_files(self, tmp_path, capsys):
        from repro.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder(enabled=True)
        recorder.count("a", 1)
        a_path, b_path = tmp_path / "a.json", tmp_path / "b.json"
        recorder.snapshot().to_json(str(a_path))
        recorder.count("a", 2)
        recorder.snapshot().to_json(str(b_path))
        assert main(["telemetry", "summarize", str(a_path), str(b_path)]) == 0
        out = capsys.readouterr().out
        assert "->" in out

    def test_summarize_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "nope"}')
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", str(bad)])

    def test_summarize_rejects_three_files(self, tmp_path):
        paths = []
        for name in ("a", "b", "c"):
            p = tmp_path / f"{name}.json"
            p.write_text("{}")
            paths.append(str(p))
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", *paths])


class TestTelemetryTrend:
    @staticmethod
    def _bench_record(name, timestamp, phases):
        return {
            "benchmark": name,
            "timestamp": timestamp,
            "telemetry": {
                "wall_seconds": sum(s for __, s, __s in phases.values()),
                "phases": [
                    {
                        "phase": phase,
                        "count": count,
                        "seconds": seconds,
                        "self_seconds": self_seconds,
                    }
                    for phase, (count, seconds, self_seconds) in phases.items()
                ],
            },
        }

    def _write_runs(self, tmp_path):
        first = self._bench_record(
            "ops", 100.0,
            {"sim.run": (10, 2.0, 1.0), "overlay.build": (1, 0.5, 0.5)},
        )
        second = self._bench_record(
            "ops", 200.0,
            {"sim.run": (10, 4.0, 2.0), "overlay.build": (1, 0.5, 0.5)},
        )
        (tmp_path / "BENCH_ops_a.json").write_text(json.dumps(first))
        (tmp_path / "BENCH_ops_b.json").write_text(json.dumps(second))
        # a record without a phase table (telemetry was off) is skipped
        (tmp_path / "BENCH_plain.json").write_text(
            json.dumps({"benchmark": "plain", "timestamp": 50.0})
        )

    def test_trend_reports_and_flags_regression(self, tmp_path, capsys):
        self._write_runs(tmp_path)
        assert main(["telemetry", "trend", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ops (2 run(s)):" in out
        assert "sim.run" in out
        assert "<-- regression" in out
        assert "2.00x" in out
        assert "skipped (no phase table)" in out
        assert "1 phase(s) regressed" in out

    def test_fail_on_regression_exit_code(self, tmp_path, capsys):
        self._write_runs(tmp_path)
        assert main([
            "telemetry", "trend", str(tmp_path), "--fail-on-regression",
        ]) == 1
        # raising the threshold past 2x clears the failure
        assert main([
            "telemetry", "trend", str(tmp_path),
            "--fail-on-regression", "--threshold", "1.5",
        ]) == 0

    def test_trend_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["telemetry", "trend", str(tmp_path / "nope")])

    def test_trend_empty_directory(self, tmp_path, capsys):
        assert main(["telemetry", "trend", str(tmp_path)]) == 0
        assert "no BENCH records" in capsys.readouterr().out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8414
        assert args.host == "127.0.0.1"
        assert args.state_dir == "avmem-sessions"
        assert args.idle_timeout is None

    def test_serve_overrides(self):
        args = build_parser().parse_args([
            "serve", "--port", "9000", "--state-dir", "/tmp/x",
            "--idle-timeout", "30",
        ])
        assert args.port == 9000
        assert args.state_dir == "/tmp/x"
        assert args.idle_timeout == pytest.approx(30.0)
