"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_command(self):
        args = build_parser().parse_args(["figure", "fig7", "--scale", "small"])
        assert args.command == "figure"
        assert args.figure_id == "fig7"
        assert args.scale == "small"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_trace_generation_text(self, tmp_path, capsys):
        out = tmp_path / "t.txt"
        code = main([
            "trace", "--hosts", "40", "--epochs", "12", "--seed", "4",
            "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "mean_availability" in captured

    def test_trace_generation_npz(self, tmp_path):
        out = tmp_path / "t.npz"
        assert main([
            "trace", "--hosts", "40", "--epochs", "12", "--out", str(out),
        ]) == 0
        from repro.churn.loader import load_trace_npz

        trace = load_trace_npz(out)
        assert trace.node_count == 40

    def test_snapshot_command(self, capsys):
        assert main(["snapshot", "--scale", "small", "--seed", "6"]) == 0
        captured = capsys.readouterr().out
        assert "online nodes" in captured
        assert "band" in captured

    def test_figure_command_runs(self, capsys):
        assert main(["figure", "fig3", "--scale", "small", "--seed", "6"]) == 0
        captured = capsys.readouterr().out
        assert "fig3" in captured
        assert "slope" in captured
