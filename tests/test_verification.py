"""Unit tests for inbound message verification (the consistency check)."""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.availability import AvailabilityPdf
from repro.core.ids import make_node_ids
from repro.core.predicates import NodeDescriptor, paper_predicate
from repro.core.verification import InboundVerifier
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.oracle import OracleAvailability
from repro.sim.engine import Simulator


@pytest.fixture
def verification_setup(rng):
    ids = make_node_ids(60)
    # Stable presence so raw availabilities are exact and controllable:
    # node i online a fraction (i+1)/60 of each 1000-second cycle.
    schedules = {}
    for i, node in enumerate(ids):
        fraction = (i + 1) / 60.0
        windows = [
            (k * 1000.0, k * 1000.0 + fraction * 1000.0) for k in range(200)
        ]
        schedules[node] = NodeSchedule(windows)
    trace = ChurnTrace(schedules, horizon=200_000.0)
    sim = Simulator()
    oracle = OracleAvailability(trace, sim)
    avs = [(i + 1) / 60.0 for i in range(60)]
    pdf = AvailabilityPdf.from_samples(avs)
    predicate = paper_predicate(pdf)
    sim.run_until(50_000.0)
    return sim, trace, oracle, predicate, ids


class TestVerifier:
    def test_accepts_true_neighbors_with_fresh_info(self, verification_setup):
        sim, trace, oracle, predicate, ids = verification_setup
        owner = ids[30]
        verifier = InboundVerifier(
            owner, predicate, CachedAvailabilityView(oracle, sim)
        )
        own_av = oracle.query(owner)
        mismatches = 0
        checked = 0
        for sender in ids:
            if sender == owner:
                continue
            truth = predicate.evaluate(
                NodeDescriptor(sender, oracle.query(sender)),
                NodeDescriptor(owner, own_av),
            )
            checked += 1
            if verifier.accepts(sender) != truth:
                mismatches += 1
        # Fresh caches (get_or_fetch pulls current values): perfect match.
        assert mismatches == 0
        assert checked == 59

    def test_stale_cache_changes_decisions(self, verification_setup):
        sim, trace, oracle, predicate, ids = verification_setup
        owner = ids[10]
        cache = CachedAvailabilityView(oracle, sim)
        verifier = InboundVerifier(owner, predicate, cache)
        # Fetch everything now; then query much later against moved values.
        cache.fetch_many(ids)
        results_then = {s: verifier.accepts(s) for s in ids if s != owner}
        fresh = CachedAvailabilityView(oracle, sim)
        fresh_verifier = InboundVerifier(owner, predicate, fresh)
        sim.run_until(sim.now + 600.0)  # mid-cycle: raw availabilities shift
        results_fresh = {s: fresh_verifier.accepts(s) for s in ids if s != owner}
        # Decisions based on the stale cache are NOT recomputed.
        repeat = {s: verifier.accepts(s) for s in ids if s != owner}
        assert repeat == results_then
        assert isinstance(results_fresh, dict)

    def test_cushion_only_widens(self, verification_setup):
        sim, _, oracle, predicate, ids = verification_setup
        owner = ids[45]
        verifier = InboundVerifier(
            owner, predicate, CachedAvailabilityView(oracle, sim)
        )
        for sender in ids[:20]:
            if sender == owner:
                continue
            if verifier.accepts(sender, cushion=0.0):
                assert verifier.accepts(sender, cushion=0.2)

    def test_cushion_override_beats_default(self, verification_setup):
        sim, _, oracle, predicate, ids = verification_setup
        owner = ids[45]
        verifier = InboundVerifier(
            owner, predicate, CachedAvailabilityView(oracle, sim), cushion=0.0
        )
        result = verifier.verify(ids[0], cushion=0.25)
        assert result.cushion == 0.25

    def test_result_margin_sign(self, verification_setup):
        sim, _, oracle, predicate, ids = verification_setup
        owner = ids[20]
        verifier = InboundVerifier(
            owner, predicate, CachedAvailabilityView(oracle, sim)
        )
        for sender in ids[:15]:
            if sender == owner:
                continue
            result = verifier.verify(sender)
            assert result.accepted == (result.margin >= 0)

    def test_counters(self, verification_setup):
        sim, _, oracle, predicate, ids = verification_setup
        owner = ids[20]
        verifier = InboundVerifier(
            owner, predicate, CachedAvailabilityView(oracle, sim)
        )
        for sender in ids[:10]:
            if sender != owner:
                verifier.verify(sender)
        assert verifier.accept_count + verifier.reject_count == 10

    def test_invalid_cushion_rejected(self, verification_setup):
        sim, _, oracle, predicate, ids = verification_setup
        with pytest.raises(ValueError):
            InboundVerifier(
                ids[0], predicate, CachedAvailabilityView(oracle, sim), cushion=1.5
            )
