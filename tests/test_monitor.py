"""Unit tests for the availability-monitoring substrate."""

import numpy as np
import pytest

from repro.churn.trace import ChurnTrace, NodeSchedule
from repro.core.ids import make_node_ids
from repro.monitor.base import AvailabilityService, CoarseViewProvider
from repro.monitor.cache import CachedAvailabilityView
from repro.monitor.coarse_view import GlobalSampleView, ShuffledCoarseView
from repro.monitor.oracle import OracleAvailability
from repro.sim.engine import Simulator


@pytest.fixture
def trace_and_ids():
    ids = make_node_ids(4)
    schedules = {
        ids[0]: NodeSchedule([(0.0, 100.0)]),          # on for first 100s
        ids[1]: NodeSchedule([(50.0, 200.0)]),         # late joiner
        ids[2]: NodeSchedule([(0.0, 200.0)]),          # always on
        ids[3]: NodeSchedule([]),                      # never on
    }
    return ChurnTrace(schedules, horizon=200.0), ids


class TestOracle:
    def test_raw_availability(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim)
        sim.run_until(100.0)
        assert oracle.query(ids[0]) == pytest.approx(1.0)
        assert oracle.query(ids[1]) == pytest.approx(0.5)
        assert oracle.query(ids[3]) == 0.0

    def test_windowed_availability(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim, window=50.0)
        sim.run_until(150.0)
        assert oracle.query(ids[0]) == pytest.approx(0.0)  # offline since 100
        assert oracle.query(ids[1]) == pytest.approx(1.0)

    def test_unknown_node_raises(self, trace_and_ids):
        trace, _ = trace_and_ids
        oracle = OracleAvailability(trace, Simulator())
        with pytest.raises(KeyError):
            oracle.query(make_node_ids(10)[9])

    def test_noise_bounded_and_deterministic(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim, noise_std=0.05, seed=3)
        sim.run_until(100.0)
        first = oracle.query(ids[0])
        second = oracle.query(ids[0])
        assert first == second  # same time bucket: same answer
        assert 0.0 <= first <= 1.0

    def test_noise_changes_across_buckets(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim, noise_std=0.05, noise_bucket=10.0, seed=3)
        # Compare the applied noise (noisy minus exact) for a node whose
        # estimate is not clipped at 0/1, so re-drawn bucket noise is
        # observable rather than masked by saturation.
        sim.run_until(55.0)
        a = oracle.query(ids[1]) - oracle.true_availability(ids[1])
        sim.run_until(65.0)
        b = oracle.query(ids[1]) - oracle.true_availability(ids[1])
        assert a != b

    def test_quantization(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim, quantization=0.25)
        sim.run_until(150.0)
        value = oracle.query(ids[1])  # true 100/150 = 0.667 -> 0.75
        assert value == pytest.approx(0.75)

    def test_true_availability_ignores_noise(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim, noise_std=0.2, seed=1)
        sim.run_until(100.0)
        assert oracle.true_availability(ids[0]) == pytest.approx(1.0)

    def test_satisfies_protocol(self, trace_and_ids):
        trace, _ = trace_and_ids
        assert isinstance(OracleAvailability(trace, Simulator()), AvailabilityService)


class TestCachedView:
    @pytest.fixture
    def setup(self, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        oracle = OracleAvailability(trace, sim)
        return sim, oracle, CachedAvailabilityView(oracle, sim), ids

    def test_get_before_fetch_is_none(self, setup):
        _, _, cache, ids = setup
        assert cache.get(ids[0]) is None

    def test_fetch_then_get(self, setup):
        sim, _, cache, ids = setup
        sim.run_until(100.0)
        value = cache.fetch(ids[1])
        assert cache.get(ids[1]) == value

    def test_cached_value_goes_stale(self, setup):
        """The point of the cache: reads do NOT track the service."""
        sim, oracle, cache, ids = setup
        sim.run_until(100.0)
        cache.fetch(ids[0])  # availability 1.0 at t=100
        sim.run_until(200.0)  # true availability now 0.5
        assert cache.get(ids[0]) == pytest.approx(1.0)
        assert oracle.query(ids[0]) == pytest.approx(0.5)

    def test_staleness_tracking(self, setup):
        sim, _, cache, ids = setup
        cache.fetch(ids[2])
        sim.run_until(42.0)
        assert cache.staleness(ids[2]) == pytest.approx(42.0)
        assert cache.staleness(ids[0]) is None

    def test_get_or_fetch(self, setup):
        _, _, cache, ids = setup
        value = cache.get_or_fetch(ids[2])
        assert cache.get(ids[2]) == value
        assert cache.fetch_count == 1
        cache.get_or_fetch(ids[2])
        assert cache.fetch_count == 1  # second call hit the cache

    def test_fetch_many_and_len(self, setup):
        _, _, cache, ids = setup
        cache.fetch_many(ids[:3])
        assert len(cache) == 3
        assert ids[0] in cache

    def test_evict(self, setup):
        _, _, cache, ids = setup
        cache.fetch(ids[0])
        cache.evict(ids[0])
        assert cache.get(ids[0]) is None


class TestGlobalSampleView:
    def test_view_size_and_no_self(self, rng):
        sim = Simulator()
        ids = make_node_ids(50)
        view = GlobalSampleView(sim, ids, view_size=10, rng=rng, stale_fraction=0.0)
        for node in ids[:10]:
            sample = view.view(node)
            assert node not in sample
            assert len(sample) <= 10
            assert len(set(sample)) == len(sample)

    def test_stable_within_period(self, rng):
        sim = Simulator()
        ids = make_node_ids(50)
        view = GlobalSampleView(sim, ids, 10, rng=rng, period=60.0)
        first = view.view(ids[0])
        sim.run_until(30.0)
        assert view.view(ids[0]) == first

    def test_resampled_across_periods(self, rng):
        sim = Simulator()
        ids = make_node_ids(200)
        view = GlobalSampleView(sim, ids, 10, rng=rng, period=60.0)
        first = view.view(ids[0])
        sim.run_until(61.0)
        assert view.view(ids[0]) != first

    def test_online_only_sampling(self, rng, trace_and_ids):
        trace, ids = trace_and_ids
        sim = Simulator()
        view = GlobalSampleView(
            sim, ids, 3, rng=rng, presence=trace, stale_fraction=0.0
        )
        sim.run_until(150.0)
        sample = view.view(ids[3])
        # At t=150 only ids[1] and ids[2] are online.
        assert set(sample) <= {ids[1], ids[2]}

    def test_unknown_node_raises(self, rng):
        sim = Simulator()
        view = GlobalSampleView(sim, make_node_ids(5), 2, rng=rng)
        with pytest.raises(KeyError):
            view.view(make_node_ids(10)[9])

    def test_coverage_over_periods(self, rng):
        """Every node eventually appears in a given view — the discovery
        requirement of Section 3.1."""
        sim = Simulator()
        ids = make_node_ids(30)
        view = GlobalSampleView(sim, ids, 8, rng=rng, period=10.0, stale_fraction=0.0)
        seen = set()
        for step in range(60):
            seen.update(view.view(ids[0]))
            sim.run_until((step + 1) * 10.0)
        assert len(seen) == 29  # everyone but self

    def test_satisfies_protocol(self, rng):
        view = GlobalSampleView(Simulator(), make_node_ids(5), 2, rng=rng)
        assert isinstance(view, CoarseViewProvider)

    def test_view_always_filled_when_population_permits(self, rng):
        """Regression: stale picks that collide with live picks (or the
        owner) must be resampled, not dropped — otherwise views silently
        shrink below ``view_size`` and bias discovery time."""
        sim = Simulator()
        ids = make_node_ids(12)
        view = GlobalSampleView(
            sim, ids, view_size=10, rng=rng, period=10.0, stale_fraction=0.5
        )
        for step in range(20):
            for node in ids[:4]:
                sample = view.view(node)
                assert len(sample) == view.view_size
                assert node not in sample
                assert len(set(sample)) == len(sample)
            sim.run_until((step + 1) * 10.0)

    def test_live_slots_never_filled_with_offline_nodes(self, rng, trace_and_ids):
        """The top-up must respect the live/stale composition: with
        ``stale_fraction=0`` a thin online population yields a short
        view, never an offline padding pick."""
        trace, ids = trace_and_ids
        sim = Simulator()
        view = GlobalSampleView(
            sim, ids, view_size=4, rng=rng, presence=trace, stale_fraction=0.0
        )
        sim.run_until(150.0)
        sample = view.view(ids[3])
        # At t=150 only ids[1] and ids[2] are online.
        assert set(sample) <= {ids[1], ids[2]}


class TestShuffledCoarseView:
    def test_bootstrap_views_valid(self, rng):
        sim = Simulator()
        ids = make_node_ids(40)
        view = ShuffledCoarseView(sim, ids, view_size=8, rng=rng, start=False)
        for node in ids:
            sample = view.view(node)
            assert node not in sample
            assert len(sample) == 8
            assert len(set(sample)) == 8

    def test_shuffling_changes_views(self, rng):
        sim = Simulator()
        ids = make_node_ids(40)
        view = ShuffledCoarseView(sim, ids, view_size=8, rng=rng, start=False)
        before = view.view(ids[0])
        for _ in range(5):
            view.step()
        assert view.shuffle_count > 0
        assert view.view(ids[0]) != before

    def test_views_never_contain_self_after_shuffles(self, rng):
        sim = Simulator()
        ids = make_node_ids(30)
        view = ShuffledCoarseView(sim, ids, view_size=6, rng=rng, start=False)
        for _ in range(10):
            view.step()
        for node in ids:
            assert node not in view.view(node)
            assert len(view.view(node)) <= 6

    def test_eventual_coverage(self, rng):
        sim = Simulator()
        ids = make_node_ids(25)
        view = ShuffledCoarseView(sim, ids, view_size=6, rng=rng, start=False)
        seen = set()
        for _ in range(120):
            view.step()
            seen.update(view.view(ids[0]))
        assert len(seen) >= 20  # wide coverage of the population

    def test_periodic_task_drives_shuffles(self, rng):
        sim = Simulator()
        ids = make_node_ids(20)
        view = ShuffledCoarseView(sim, ids, view_size=5, rng=rng, period=10.0)
        sim.run_until(35.0)
        assert view.shuffle_count >= 20 * 3
        view.stop()
        count = view.shuffle_count
        sim.run_until(100.0)
        assert view.shuffle_count == count
