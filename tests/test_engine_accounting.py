"""Message-accounting consistency between operation records and the
network layer — the cost numbers reported by the figures must add up."""

import numpy as np
import pytest

from repro.ops.spec import TargetSpec


class TestAnycastAccounting:
    def test_data_messages_bounded_by_network_sends(self, small_simulation):
        s = small_simulation
        sent_before = s.network.stats.sent
        record = s.run_anycast((0.6, 1.0), initiator_band="mid", policy="retry-greedy")
        sent_after = s.network.stats.sent
        # Receptions counted by the record cannot exceed what the network
        # actually carried in that window.
        assert record.data_messages <= sent_after - sent_before

    def test_hops_consistent_with_receptions(self, small_simulation):
        record = small_simulation.run_anycast(
            (0.6, 1.0), initiator_band="mid", policy="greedy"
        )
        if record.delivered and record.hops is not None:
            # Each hop is one reception (the initiator's self-check is not
            # a network reception).
            assert record.data_messages >= record.hops

    def test_zero_hop_delivery_sends_nothing(self, small_simulation):
        s = small_simulation
        # Find an online initiator already inside the target.
        initiator = None
        for node in s.online_ids():
            if 0.55 <= s.nodes[node].self_descriptor().availability <= 1.0:
                initiator = node
                break
        if initiator is None:
            pytest.skip("no initiator inside the target right now")
        record = s.run_anycast((0.55, 1.0), initiator=initiator, policy="greedy")
        assert record.delivered
        assert record.hops == 0
        assert record.data_messages == 0


class TestMulticastAccounting:
    def test_flood_messages_cover_deliveries(self, small_simulation):
        record = small_simulation.run_multicast(
            (0.6, 1.0), initiator_band="high", mode="flood"
        )
        # Every stage-2 delivery beyond the root required >= 1 message.
        non_root_deliveries = max(0, len(record.deliveries) - 1)
        assert record.data_messages >= non_root_deliveries

    def test_gossip_message_budget(self, small_simulation):
        """Gossip sends at most fanout x rounds messages per participant."""
        s = small_simulation
        config = s.settings.config.gossip
        record = s.run_multicast((0.6, 1.0), initiator_band="high", mode="gossip")
        participants = len(record.deliveries) + len(record.spam)
        assert record.data_messages <= participants * config.fanout * config.rounds

    def test_engine_records_registry(self, small_simulation):
        s = small_simulation
        before = len(s.engine.multicasts)
        s.run_multicast((0.6, 1.0), initiator_band="high")
        assert len(s.engine.multicasts) == before + 1
        # Each multicast shares its op id with its stage-1 anycast.
        op_id, record = max(s.engine.multicasts.items())
        assert record.anycast is s.engine.anycasts[op_id]


class TestDuplicateSuppressionAccounting:
    """Batched dispatch absorbs seen-at-send duplicates before they
    become simulator events, pre-crediting ``delivered`` and
    ``duplicate_receptions`` at send time.  The record-level accounting
    identities must therefore hold exactly as if every duplicate had
    traveled (which is what per-hop dispatch does)."""

    def test_receptions_bounded_by_data_messages(self, small_simulation):
        record = small_simulation.run_multicast(
            (0.5, 0.9), initiator_band="high", mode="flood"
        )
        receptions = (
            len(record.deliveries) + len(record.spam) + record.duplicate_receptions
        )
        # The root's self-acceptance is not a network reception, so it is
        # excluded; every other (first or duplicate) reception consumed
        # exactly one of the record's data messages.
        assert receptions - 1 <= record.data_messages

    def test_seen_set_is_exactly_first_receptions(self, small_simulation):
        """``_mcast_seen`` (what the dispatch-layer mask consults) grows
        by exactly the first receptions — deliveries plus spam — and
        duplicates never enter it."""
        s = small_simulation
        record = s.run_multicast((0.5, 0.9), initiator_band="high", mode="flood")
        seen = s.engine._mcast_seen[record.op_id]
        assert seen == set(record.deliveries) | {node for node, _ in record.spam}

    def test_gossip_duplicates_balance_too(self, small_simulation):
        record = small_simulation.run_multicast(
            (0.5, 0.9), initiator_band="high", mode="gossip"
        )
        receptions = (
            len(record.deliveries) + len(record.spam) + record.duplicate_receptions
        )
        assert receptions - 1 <= record.data_messages
        seen = small_simulation.engine._mcast_seen[record.op_id]
        assert seen == set(record.deliveries) | {node for node, _ in record.spam}
