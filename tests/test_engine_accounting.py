"""Message-accounting consistency between operation records and the
network layer — the cost numbers reported by the figures must add up."""

import numpy as np
import pytest

from repro.ops.spec import TargetSpec


class TestAnycastAccounting:
    def test_data_messages_bounded_by_network_sends(self, small_simulation):
        s = small_simulation
        sent_before = s.network.stats.sent
        record = s.run_anycast((0.6, 1.0), initiator_band="mid", policy="retry-greedy")
        sent_after = s.network.stats.sent
        # Receptions counted by the record cannot exceed what the network
        # actually carried in that window.
        assert record.data_messages <= sent_after - sent_before

    def test_hops_consistent_with_receptions(self, small_simulation):
        record = small_simulation.run_anycast(
            (0.6, 1.0), initiator_band="mid", policy="greedy"
        )
        if record.delivered and record.hops is not None:
            # Each hop is one reception (the initiator's self-check is not
            # a network reception).
            assert record.data_messages >= record.hops

    def test_zero_hop_delivery_sends_nothing(self, small_simulation):
        s = small_simulation
        # Find an online initiator already inside the target.
        initiator = None
        for node in s.online_ids():
            if 0.55 <= s.nodes[node].self_descriptor().availability <= 1.0:
                initiator = node
                break
        if initiator is None:
            pytest.skip("no initiator inside the target right now")
        record = s.run_anycast((0.55, 1.0), initiator=initiator, policy="greedy")
        assert record.delivered
        assert record.hops == 0
        assert record.data_messages == 0


class TestMulticastAccounting:
    def test_flood_messages_cover_deliveries(self, small_simulation):
        record = small_simulation.run_multicast(
            (0.6, 1.0), initiator_band="high", mode="flood"
        )
        # Every stage-2 delivery beyond the root required >= 1 message.
        non_root_deliveries = max(0, len(record.deliveries) - 1)
        assert record.data_messages >= non_root_deliveries

    def test_gossip_message_budget(self, small_simulation):
        """Gossip sends at most fanout x rounds messages per participant."""
        s = small_simulation
        config = s.settings.config.gossip
        record = s.run_multicast((0.6, 1.0), initiator_band="high", mode="gossip")
        participants = len(record.deliveries) + len(record.spam)
        assert record.data_messages <= participants * config.fanout * config.rounds

    def test_engine_records_registry(self, small_simulation):
        s = small_simulation
        before = len(s.engine.multicasts)
        s.run_multicast((0.6, 1.0), initiator_band="high")
        assert len(s.engine.multicasts) == before + 1
        # Each multicast shares its op id with its stage-1 anycast.
        op_id, record = max(s.engine.multicasts.items())
        assert record.anycast is s.engine.anycasts[op_id]
