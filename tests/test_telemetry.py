"""Tests for the run-level telemetry subsystem.

Covers the recorder primitives (counters, gauges, power-of-two
histograms, nested spans with exception unwinding), the exact JSON
round-trip of :class:`~repro.telemetry.snapshot.TelemetrySnapshot`
(hypothesis-generated), the disabled-recorder overhead contract, the
no-perturbation contract (seeded runs produce bit-identical operation
records with telemetry on or off), RSS unit conversion, and the
progress reporter.
"""

from __future__ import annotations

import io
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    TELEMETRY,
    Histogram,
    ProgressReporter,
    TelemetryRecorder,
    TelemetrySnapshot,
    render_diff,
    render_snapshot,
    ru_maxrss_to_mb,
)
from repro.telemetry.core import NULL_SPAN
from repro.telemetry.snapshot import FORMAT, SpanStat


@pytest.fixture
def recorder() -> TelemetryRecorder:
    return TelemetryRecorder(enabled=True)


@pytest.fixture
def global_telemetry():
    """The process-wide recorder, guaranteed disabled+reset afterwards."""
    TELEMETRY.enable(reset=True)
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.disable()
        TELEMETRY.attach_progress(None)
        TELEMETRY.reset()


class TestHistogram:
    def test_bucket_boundaries(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 4, 5, 8, 9):
            hist.observe(value)
        # [0,1] -> bucket 0; (1,2] -> 1; (2,4] -> 2; (4,8] -> 3; (8,16] -> 4
        assert hist.counts[0] == 2
        assert hist.counts[1] == 1
        assert hist.counts[2] == 2
        assert hist.counts[3] == 2
        assert hist.counts[4] == 1
        assert hist.count == 8
        assert hist.total == 32.0
        assert hist.vmin == 0.0 and hist.vmax == 9.0

    def test_array_observe_matches_scalar(self, rng):
        values = rng.uniform(0, 5000, size=400)
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
        b.observe_array(values)
        assert np.array_equal(a.counts, b.counts)
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)
        assert a.vmin == b.vmin and a.vmax == b.vmax

    def test_negative_rejected(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.observe_array(np.array([1.0, -0.5]))

    def test_empty_as_dict(self):
        payload = Histogram().as_dict()
        assert payload["count"] == 0
        assert payload["counts"] == []
        assert payload["min"] is None and payload["max"] is None

    def test_mean(self):
        hist = Histogram()
        hist.observe_array(np.array([2.0, 4.0, 6.0]))
        assert hist.mean() == pytest.approx(4.0)
        assert Histogram().mean() != Histogram().mean()  # NaN


class TestSpans:
    def test_nesting_aggregates_into_tree(self, recorder):
        for _ in range(3):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    pass
        with recorder.span("other"):
            pass
        snapshot = recorder.snapshot()
        paths = snapshot.span_paths()
        assert set(paths) == {"outer", "outer.inner", "other"}
        assert paths["outer"].count == 3
        assert paths["outer.inner"].count == 3
        assert paths["other"].count == 1
        assert paths["outer"].seconds >= paths["outer.inner"].seconds

    def test_same_name_at_different_depths_distinct(self, recorder):
        with recorder.span("a"):
            with recorder.span("a"):
                pass
        paths = recorder.snapshot().span_paths()
        assert paths["a"].count == 1
        assert paths["a.a"].count == 1

    def test_exception_unwinds_and_records(self, recorder):
        with pytest.raises(RuntimeError):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    raise RuntimeError("boom")
        assert recorder._span_stack == []
        paths = recorder.snapshot().span_paths()
        assert paths["outer"].count == 1
        assert paths["inner" if "inner" in paths else "outer.inner"].count == 1
        # Recorder still usable: subsequent spans nest from the root.
        with recorder.span("after"):
            pass
        assert "after" in recorder.snapshot().span_paths()

    def test_self_seconds_subtracts_children(self, recorder):
        with recorder.span("outer"):
            with recorder.span("inner"):
                time.sleep(0.002)
        outer = recorder.snapshot().find_span("outer")
        inner = recorder.snapshot().find_span("outer.inner")
        assert outer.self_seconds == pytest.approx(
            outer.seconds - inner.seconds
        )

    def test_disabled_span_is_shared_noop(self):
        recorder = TelemetryRecorder(enabled=False)
        assert recorder.span("x") is NULL_SPAN
        assert recorder.span("y") is NULL_SPAN
        with recorder.span("x"):
            pass
        assert recorder.snapshot().spans == ()


class TestRecorder:
    def test_counters_gauges_histograms(self, recorder):
        recorder.count("a")
        recorder.count("a", 4)
        recorder.gauge("g", 2.5)
        recorder.gauge("g", 7.5)
        recorder.observe("h", 3)
        recorder.observe_array("h", np.array([1, 10]))
        snapshot = recorder.snapshot()
        assert snapshot.counters["a"] == 5
        assert snapshot.gauges["g"] == 7.5
        assert snapshot.histograms["h"]["count"] == 3

    def test_enable_resets_by_default(self, recorder):
        recorder.count("a")
        recorder.enable()
        assert recorder.snapshot().counters == {}
        recorder.count("b")
        recorder.enable(reset=False)
        assert recorder.snapshot().counters == {"b": 1}

    def test_event_tick_counts_and_samples(self, recorder):
        from repro.sim.engine import Simulator

        sim = Simulator()
        for _ in range(3000):
            recorder.event_tick(sim)
        snapshot = recorder.snapshot()
        assert snapshot.counters["sim.events"] == 3000
        assert "sim.queue_depth" in snapshot.gauges
        assert "sim.now" in snapshot.gauges

    def test_distribution_bridge(self, recorder):
        from repro.sim.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("sent").increment(7)
        registry.distribution("sizes").extend([1.0, 2.0, 3.0])
        registry.distribution("untouched")  # empty: must be skipped
        registry.export(recorder)
        snapshot = recorder.snapshot()
        assert snapshot.counters["metrics.sent"] == 7
        assert snapshot.distributions["metrics.sizes"]["count"] == 3.0
        assert "metrics.untouched" not in snapshot.distributions

    def test_export_noop_when_disabled(self):
        from repro.sim.metrics import MetricsRegistry

        recorder = TelemetryRecorder(enabled=False)
        registry = MetricsRegistry()
        registry.counter("sent").increment(1)
        registry.export(recorder)
        assert recorder.snapshot().counters == {}


finite_floats = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="._-"),
    min_size=1,
    max_size=24,
)


def span_stats(depth: int = 2):
    base = st.builds(
        SpanStat,
        name=names,
        count=st.integers(min_value=1, max_value=10_000),
        seconds=finite_floats,
    )
    if depth == 0:
        return base
    return st.builds(
        SpanStat,
        name=names,
        count=st.integers(min_value=1, max_value=10_000),
        seconds=finite_floats,
        children=st.lists(span_stats(depth - 1), max_size=3).map(tuple),
    )


snapshots = st.builds(
    TelemetrySnapshot,
    wall_seconds=finite_floats,
    counters=st.dictionaries(names, st.integers(min_value=0, max_value=2**53), max_size=5),
    gauges=st.dictionaries(names, finite_floats, max_size=5),
    histograms=st.dictionaries(
        names,
        st.builds(
            lambda counts, vals: {
                "counts": counts,
                "count": sum(counts),
                "sum": float(sum(vals)),
                "min": (min(vals) if counts and sum(counts) else None),
                "max": (max(vals) if counts and sum(counts) else None),
            },
            counts=st.lists(st.integers(min_value=1, max_value=100), max_size=4),
            vals=st.lists(finite_floats, min_size=1, max_size=4),
        ),
        max_size=3,
    ),
    distributions=st.dictionaries(
        names, st.dictionaries(names, finite_floats, min_size=1, max_size=4), max_size=3
    ),
    spans=st.lists(span_stats(), max_size=3).map(tuple),
)


class TestSnapshotRoundTrip:
    @given(snapshot=snapshots)
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_exact(self, snapshot, tmp_path_factory):
        path = tmp_path_factory.mktemp("tel") / "snap.json"
        snapshot.to_json(str(path))
        assert TelemetrySnapshot.from_json(str(path)) == snapshot

    def test_live_recorder_round_trip(self, recorder, tmp_path):
        recorder.count("events", 12)
        recorder.gauge("depth", 3.0)
        recorder.observe_array("cohorts", np.array([1, 2, 300]))
        recorder.distribution("lat", {"count": 2.0, "mean": 5.5})
        with recorder.span("build"):
            with recorder.span("inner"):
                pass
        snapshot = recorder.snapshot()
        path = tmp_path / "tel.json"
        snapshot.to_json(str(path))
        assert TelemetrySnapshot.from_json(str(path)) == snapshot

    def test_nan_distribution_scrubbed(self, recorder, tmp_path):
        recorder.distribution("empty", {"mean": float("nan"), "count": 0.0})
        path = tmp_path / "tel.json"
        recorder.snapshot().to_json(str(path))
        text = path.read_text()
        assert "NaN" not in text
        loaded = TelemetrySnapshot.from_json(str(path))
        assert loaded.distributions["empty"]["mean"] != loaded.distributions["empty"]["mean"]

    def test_format_tag_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="format"):
            TelemetrySnapshot.from_json(str(path))
        assert FORMAT == "avmem-telemetry-v1"

    def test_coverage_and_breakdown(self):
        snapshot = TelemetrySnapshot(
            wall_seconds=10.0,
            spans=(
                SpanStat(
                    name="run",
                    count=1,
                    seconds=9.5,
                    children=(SpanStat(name="sub", count=2, seconds=4.0),),
                ),
            ),
        )
        assert snapshot.span_coverage() == pytest.approx(0.95)
        rows = {row["phase"]: row for row in snapshot.phase_breakdown()}
        assert rows["run"]["self_seconds"] == pytest.approx(5.5)
        assert rows["run.sub"]["seconds"] == pytest.approx(4.0)


class TestRender:
    def test_render_snapshot_mentions_everything(self, recorder):
        recorder.count("net.drops", 3)
        recorder.gauge("queue", 17.0)
        recorder.observe("cohort", 5)
        recorder.distribution("lat", {"mean": 1.5})
        with recorder.span("phase"):
            pass
        text = render_snapshot(recorder.snapshot())
        for token in ("net.drops", "queue", "cohort", "lat", "phase", "wall-clock"):
            assert token in text

    def test_render_diff_marks_new_and_gone(self, recorder):
        a = recorder.snapshot()
        recorder.count("only.b", 2)
        b = recorder.snapshot()
        text = render_diff(a, b)
        assert "only.b" in text and "(new)" in text
        text_rev = render_diff(b, a)
        assert "(gone)" in text_rev


class TestDisabledOverhead:
    def test_disabled_span_allocates_nothing(self):
        recorder = TelemetryRecorder(enabled=False)
        spans = {id(recorder.span("x")) for _ in range(100)}
        assert spans == {id(NULL_SPAN)}

    def test_guard_overhead_small(self):
        """The per-event cost while disabled is one attribute check; a
        generous factor over an empty loop keeps this meaningful without
        being timing-flaky."""
        recorder = TelemetryRecorder(enabled=False)
        n = 200_000

        def guarded() -> float:
            t0 = time.perf_counter()
            for _ in range(n):
                if recorder.enabled:
                    recorder.count("x")
            return time.perf_counter() - t0

        flag = False

        def baseline() -> float:
            t0 = time.perf_counter()
            for _ in range(n):
                if flag:
                    pass
            return time.perf_counter() - t0

        guarded_best = min(guarded() for _ in range(5))
        baseline_best = min(baseline() for _ in range(5))
        assert guarded_best < baseline_best * 10 + 0.01


class TestNoPerturbation:
    def test_seeded_records_identical_with_telemetry(self, global_telemetry):
        """Telemetry on vs off must not move a single byte of the seeded
        operation log (instrumentation reads clocks, never rng)."""
        from repro.ops.plan import OperationItem, OperationPlan
        from repro.ops.spec import TargetSpec
        from repro.simulation import AvmemSimulation, SimulationSettings

        def run_once():
            sim = AvmemSimulation(SimulationSettings(hosts=150, seed=11))
            sim.setup(warmup=3600.0, settle=600.0)
            plan = OperationPlan(
                items=(
                    OperationItem(
                        kind="anycast",
                        target=TargetSpec.range(0.4, 0.9),
                        count=5,
                        band="mid",
                    ),
                    OperationItem(
                        kind="multicast",
                        target=TargetSpec.range(0.5, 0.95),
                        count=2,
                        band="high",
                    ),
                ),
                settle=30.0,
                name="identity-check",
            )
            return sim.ops.run(plan)

        global_telemetry.enable(reset=True)
        log_on = run_once()
        global_telemetry.disable()
        log_off = run_once()
        assert set(log_on.columns) == set(log_off.columns)
        for name in log_on.columns:
            assert np.array_equal(
                log_on.columns[name], log_off.columns[name], equal_nan=True
            ), f"column {name} diverged under telemetry"
        # And the enabled run actually recorded something.
        snapshot = global_telemetry.snapshot()
        assert snapshot.counters.get("sim.events", 0) > 0
        assert snapshot.find_span("ops.execute") is not None


class TestRss:
    def test_linux_units_kilobytes(self):
        assert ru_maxrss_to_mb(1_048_576, platform="linux") == pytest.approx(1024.0)
        assert ru_maxrss_to_mb(2048, platform="linux2") == pytest.approx(2.0)

    def test_darwin_units_bytes(self):
        assert ru_maxrss_to_mb(1_073_741_824, platform="darwin") == pytest.approx(1024.0)
        assert ru_maxrss_to_mb(1_048_576, platform="darwin") == pytest.approx(1.0)

    def test_peak_and_current_rss_positive(self):
        from repro.telemetry import current_rss_mb, peak_rss_mb

        peak = peak_rss_mb()
        if peak is not None:
            assert peak > 1.0
        current = current_rss_mb()
        if current is not None:
            assert current > 1.0

    def test_bench_util_delegates(self):
        import sys

        sys_path = list(sys.path)
        try:
            import os

            sys.path.insert(
                0, os.path.join(os.path.dirname(__file__), "..", "benchmarks")
            )
            os.environ["AVMEM_BENCH_TELEMETRY"] = "0"
            import bench_util

            from repro.telemetry.rss import peak_rss_mb as canonical

            assert bench_util.peak_rss_mb is canonical
        finally:
            sys.path[:] = sys_path
            os.environ.pop("AVMEM_BENCH_TELEMETRY", None)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestProgressReporter:
    def test_rate_limited_emission(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(interval=10.0, stream=stream, clock=clock)
        assert not reporter.poke()  # t=0: within the first interval
        clock.now = 5.0
        assert not reporter.poke()
        clock.now = 11.0
        assert reporter.poke()
        clock.now = 12.0
        assert not reporter.poke()  # rate-limited again
        assert reporter.lines_emitted == 1
        assert "[progress" in stream.getvalue()

    def test_sim_fields_rendered(self):
        from repro.sim.engine import Simulator

        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(interval=1.0, stream=stream, clock=clock)
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until(2.0)
        clock.now = 2.0
        assert reporter.poke(sim=sim)
        line = stream.getvalue()
        assert "sim-t=" in line
        assert "events=" in line
        assert "pending=" in line

    def test_context_rendered(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(interval=1.0, stream=stream, clock=clock)
        clock.now = 1.5
        assert reporter.poke(context="overlay.candidates")
        assert "overlay.candidates" in stream.getvalue()


class TestContextRouting:
    """current()/use_recorder() — the per-session routing layer."""

    def test_default_is_singleton(self):
        from repro.telemetry import current

        assert current() is TELEMETRY

    def test_use_recorder_overrides_and_restores(self, recorder):
        from repro.telemetry import current, use_recorder

        with use_recorder(recorder) as active:
            assert active is recorder
            assert current() is recorder
        assert current() is TELEMETRY

    def test_nested_contexts_unwind_in_order(self, recorder):
        from repro.telemetry import current, use_recorder

        inner = TelemetryRecorder(enabled=True)
        with use_recorder(recorder):
            with use_recorder(inner):
                assert current() is inner
            assert current() is recorder
        assert current() is TELEMETRY

    def test_restored_on_exception(self, recorder):
        from repro.telemetry import current, use_recorder

        with pytest.raises(RuntimeError):
            with use_recorder(recorder):
                raise RuntimeError("boom")
        assert current() is TELEMETRY

    def test_threads_see_their_own_recorder(self):
        import threading

        from repro.telemetry import current, use_recorder

        results = {}
        barrier = threading.Barrier(2)

        def work(name):
            mine = TelemetryRecorder(enabled=True)
            with use_recorder(mine):
                barrier.wait(5.0)  # both threads inside their contexts
                with current().span(f"phase.{name}"):
                    pass
                results[name] = current().snapshot()

        threads = [threading.Thread(target=work, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert results["a"].find_span("phase.a") is not None
        assert results["a"].find_span("phase.b") is None
        assert results["b"].find_span("phase.b") is not None
        assert results["b"].find_span("phase.a") is None

    def test_spans_land_in_active_recorder_not_singleton(self, recorder):
        from repro.telemetry import use_recorder

        with use_recorder(recorder):
            from repro.telemetry import current

            with current().span("routed.phase"):
                pass
        assert recorder.snapshot().find_span("routed.phase") is not None
        assert TELEMETRY.snapshot().find_span("routed.phase") is None
