"""Tests for the declarative operation-plan API.

The load-bearing property is **old-vs-new equivalence**: a seeded
``run_anycast_batch`` / ``run_multicast_batch`` shim call and the
explicit :class:`~repro.ops.plan.OperationPlan` it compiles to must
produce *identical* records on identically-seeded simulations.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.ops.plan import (
    OPERATION_KINDS,
    TIMING_MODES,
    OperationItem,
    OperationPlan,
    OperationTiming,
)
from repro.ops.results import AnycastStatus
from repro.ops.spec import TargetSpec
from repro.simulation import AvmemSimulation, SimulationSettings


def small_sim(seed: int = 5) -> AvmemSimulation:
    sim = AvmemSimulation(SimulationSettings(hosts=120, epochs=48, seed=seed))
    sim.setup(warmup=12600.0, settle=1200.0)
    return sim


@pytest.fixture(scope="module")
def sim_pair():
    """Two identically-seeded, independently-built simulations."""
    return small_sim(), small_sim()


def anycast_fields(record):
    return (
        record.op_id,
        record.initiator,
        record.status,
        record.hops,
        record.latency,
        record.data_messages,
        record.ack_messages,
        record.retries_used,
        record.started_at,
        record.delivered_at,
        record.delivery_node,
    )


def multicast_fields(record):
    return (
        record.op_id,
        record.initiator,
        record.mode,
        sorted(n.endpoint for n in record.eligible),
        sorted((n.endpoint, t) for n, t in record.deliveries.items()),
        sorted((n.endpoint, t) for n, t in record.spam),
        record.data_messages,
        record.duplicate_receptions,
        anycast_fields(record.anycast),
    )


class TestTiming:
    def test_batch_offsets(self):
        timing = OperationTiming(mode="batch", phase=7.0)
        offsets, horizon = timing.offsets(4, "anycast", None)
        np.testing.assert_allclose(offsets, 7.0)
        assert horizon == 7.0

    def test_interval_offsets_and_trailing_spacing(self):
        timing = OperationTiming(mode="interval", spacing=3.0, phase=10.0)
        offsets, horizon = timing.offsets(3, "anycast", None)
        np.testing.assert_allclose(offsets, [10.0, 13.0, 16.0])
        assert horizon == pytest.approx(19.0)  # includes one trailing spacing

    def test_interval_default_spacing_per_kind(self):
        timing = OperationTiming(mode="interval")
        a, _ = timing.offsets(2, "anycast", None)
        m, _ = timing.offsets(2, "multicast", None)
        assert a[1] - a[0] == pytest.approx(2.0)
        assert m[1] - m[0] == pytest.approx(5.0)

    def test_poisson_reproducible_and_sorted(self):
        timing = OperationTiming(mode="poisson", rate=0.5, phase=2.0)
        one, h1 = timing.offsets(20, "anycast", np.random.default_rng(3))
        two, h2 = timing.offsets(20, "anycast", np.random.default_rng(3))
        np.testing.assert_array_equal(one, two)
        assert h1 == h2 == one[-1]
        assert (np.diff(one) >= 0).all()
        assert (one >= 2.0).all()

    def test_poisson_without_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            OperationTiming(mode="poisson", rate=1.0).offsets(1, "anycast", None)

    def test_zero_count(self):
        offsets, horizon = OperationTiming(mode="interval", phase=4.0).offsets(
            0, "anycast", None
        )
        assert offsets.size == 0
        assert horizon == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OperationTiming(mode="uniform")
        with pytest.raises(ValueError):
            OperationTiming(spacing=-1.0)
        with pytest.raises(ValueError):
            OperationTiming(phase=-0.1)
        with pytest.raises(ValueError):
            OperationTiming(mode="poisson", rate=0.0)

    def test_dict_roundtrip(self):
        timing = OperationTiming(mode="poisson", rate=0.25, phase=3.0)
        assert OperationTiming.from_dict(timing.as_dict()) == timing


class TestItem:
    def test_kind_vocabulary(self):
        assert set(OPERATION_KINDS) == {"anycast", "multicast"}
        with pytest.raises(ValueError):
            OperationItem(kind="broadcast", target=TargetSpec.range(0.1, 0.2))

    def test_target_type_enforced(self):
        with pytest.raises(TypeError):
            OperationItem(kind="anycast", target=(0.1, 0.2))

    def test_policy_defaults_per_kind(self):
        target = TargetSpec.range(0.1, 0.2)
        assert OperationItem(kind="anycast", target=target).resolved_policy == "greedy"
        assert (
            OperationItem(kind="multicast", target=target).resolved_policy
            == "retry-greedy"
        )
        item = OperationItem(kind="anycast", target=target, policy="anneal")
        assert item.resolved_policy == "anneal"

    def test_validation(self):
        target = TargetSpec.range(0.1, 0.2)
        with pytest.raises(ValueError):
            OperationItem(kind="anycast", target=target, count=-1)
        with pytest.raises(ValueError):
            OperationItem(kind="anycast", target=target, band="top")
        with pytest.raises(ValueError):
            OperationItem(kind="anycast", target=target, policy="teleport")
        with pytest.raises(ValueError):
            OperationItem(kind="anycast", target=target, selector="all")
        with pytest.raises(ValueError):
            OperationItem(kind="multicast", target=target, mode="carrier-pigeon")

    def test_dict_roundtrip_with_threshold_target(self):
        item = OperationItem(
            kind="multicast",
            target=TargetSpec.threshold(0.4),
            count=3,
            band="high",
            mode="gossip",
            retry=2,
            timing=OperationTiming(mode="poisson", rate=0.1),
            label="x",
        )
        clone = OperationItem.from_dict(item.as_dict())
        assert clone == item

    def test_from_dict_target_shorthand(self):
        ranged = OperationItem.from_dict({"kind": "anycast", "target": [0.2, 0.5]})
        assert ranged.target == TargetSpec.range(0.2, 0.5)
        threshold = OperationItem.from_dict({"kind": "anycast", "target": 0.7})
        assert threshold.target == TargetSpec.threshold(0.7)


class TestPlan:
    def _item(self, **kwargs):
        defaults = dict(kind="anycast", target=TargetSpec.range(0.3, 0.6))
        defaults.update(kwargs)
        return OperationItem(**defaults)

    def test_needs_items(self):
        with pytest.raises(ValueError):
            OperationPlan(items=())

    def test_compile_sorts_and_keeps_tie_order(self):
        plan = OperationPlan(items=(
            self._item(count=2, timing=OperationTiming(mode="batch", phase=5.0)),
            self._item(count=2, timing=OperationTiming(mode="batch", phase=0.0)),
        ))
        schedule = plan.compile()
        np.testing.assert_allclose(schedule.times, [0.0, 0.0, 5.0, 5.0])
        assert schedule.item_index.tolist() == [1, 1, 0, 0]
        assert schedule.seq.tolist() == [0, 1, 0, 1]

    def test_horizon_is_max_item_end(self):
        plan = OperationPlan(items=(
            self._item(count=3, timing=OperationTiming(mode="interval", spacing=2.0)),
            self._item(count=1, timing=OperationTiming(mode="batch", phase=100.0)),
        ))
        assert plan.compile().horizon == pytest.approx(100.0)

    def test_total_operations(self):
        plan = OperationPlan(items=(self._item(count=3), self._item(count=4)))
        assert plan.total_operations == 7

    def test_json_roundtrip(self, tmp_path):
        plan = OperationPlan(
            items=(
                self._item(count=2, retry=1),
                self._item(
                    kind="multicast",
                    target=TargetSpec.threshold(0.5),
                    mode="gossip",
                    band="high",
                    timing=OperationTiming(mode="poisson", rate=0.05),
                ),
            ),
            settle=12.0,
            name="roundtrip",
        )
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        assert OperationPlan.from_json(str(path)) == plan

    def test_deterministic_plans_compile_without_rng(self):
        plan = OperationPlan(items=(self._item(count=5),))
        one = plan.compile()
        two = plan.compile()
        np.testing.assert_array_equal(one.times, two.times)


class TestShimEquivalence:
    """Seeded shim calls vs their explicit plans: identical records."""

    def test_anycast_batch(self, sim_pair):
        shim_sim, plan_sim = sim_pair
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            records = shim_sim.run_anycast_batch(
                6, (0.7, 1.0), "mid", policy="retry-greedy", retry=2
            )
        item = OperationItem(
            kind="anycast",
            target=TargetSpec.range(0.7, 1.0),
            count=6,
            band="mid",
            policy="retry-greedy",
            retry=2,
            timing=OperationTiming(mode="interval", spacing=2.0),
        )
        execution = plan_sim.ops.execute(OperationPlan.single(item, settle=30.0))
        assert [anycast_fields(r) for r in records] == [
            anycast_fields(r) for r in execution.launched
        ]
        # ... and both simulations end at the same simulated time.
        assert shim_sim.sim.now == plan_sim.sim.now

    def test_multicast_batch(self, sim_pair):
        shim_sim, plan_sim = sim_pair
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            records = shim_sim.run_multicast_batch(3, 0.5, "high", mode="gossip")
        item = OperationItem(
            kind="multicast",
            target=TargetSpec.threshold(0.5),
            count=3,
            band="high",
            mode="gossip",
            timing=OperationTiming(mode="interval", spacing=5.0),
        )
        execution = plan_sim.ops.execute(OperationPlan.single(item, settle=30.0))
        assert [multicast_fields(r) for r in records] == [
            multicast_fields(r) for r in execution.launched
        ]
        assert shim_sim.sim.now == plan_sim.sim.now

    def test_single_run_anycast(self, sim_pair):
        shim_sim, plan_sim = sim_pair
        with pytest.warns(DeprecationWarning):
            record = shim_sim.run_anycast((0.7, 1.0), initiator_band="mid")
        initiator = plan_sim.pick_initiator("mid")
        item = OperationItem(
            kind="anycast",
            target=TargetSpec.range(0.7, 1.0),
            initiator=initiator,
            timing=OperationTiming(mode="batch"),
        )
        execution = plan_sim.ops.execute(OperationPlan.single(item))
        assert anycast_fields(record) == anycast_fields(execution.records[0])

    def test_shim_records_match_log_rows(self, sim_pair):
        shim_sim, _ = sim_pair
        with pytest.warns(DeprecationWarning):
            records = shim_sim.run_anycast_batch(4, (0.6, 1.0), "mid")
        from repro.ops.log import OperationLog

        log = OperationLog.from_records(anycasts=records, band="mid")
        assert len(log) == len(records)
        for i, record in enumerate(records):
            row = log.row(i)
            assert row["op_id"] == record.op_id
            assert row["status"] == record.status
            assert row["hops"] == (-1 if record.hops is None else record.hops)
            assert row["transmissions"] == record.data_messages


class TestRunner:
    def test_requires_setup(self):
        simulation = AvmemSimulation(SimulationSettings(hosts=60, epochs=24, seed=0))
        item = OperationItem(kind="anycast", target=TargetSpec.range(0.5, 1.0))
        with pytest.raises(RuntimeError):
            simulation.ops.run(OperationPlan.single(item))

    def test_initiator_by_index_and_endpoint(self, sim_pair):
        simulation, _ = sim_pair
        target = TargetSpec.range(0.0, 1.0)  # initiator itself is in range
        by_index = OperationItem(
            kind="anycast", target=target, initiator=3,
            timing=OperationTiming(mode="batch"),
        )
        by_endpoint = OperationItem(
            kind="anycast", target=target,
            initiator=simulation.node_ids[3].endpoint,
            timing=OperationTiming(mode="batch"),
        )
        execution = simulation.ops.execute(
            OperationPlan(items=(by_index, by_endpoint), settle=5.0)
        )
        launched = execution.launched
        assert [r.initiator for r in launched] == [simulation.node_ids[3]] * 2

    def test_endpoint_index_rebuilt_per_execution(self):
        """Regression: the endpoint → node index must be rebuilt each
        execution.  A once-built cache resolves endpoint-addressed
        initiators against a stale population after the simulation's
        node set changes (here: a node leaves between plans)."""
        simulation = AvmemSimulation(SimulationSettings(hosts=60, epochs=24, seed=3))
        simulation.setup(warmup=7200.0, settle=600.0)
        target = TargetSpec.range(0.0, 1.0)

        def endpoint_item(endpoint):
            return OperationItem(
                kind="anycast", target=target, initiator=endpoint,
                timing=OperationTiming(mode="batch"),
            )

        node = simulation.node_ids[5]
        execution = simulation.ops.execute(
            OperationPlan.single(endpoint_item(node.endpoint), settle=5.0)
        )
        assert execution.records[0].initiator == node
        # The node leaves the population; its endpoint must stop resolving.
        simulation.node_ids.pop(5)
        with pytest.raises(ValueError, match="unknown initiator endpoint"):
            simulation.ops.execute(
                OperationPlan.single(endpoint_item(node.endpoint), settle=5.0)
            )
        # And it resolves again once the node is back.
        simulation.node_ids.insert(5, node)
        execution = simulation.ops.execute(
            OperationPlan.single(endpoint_item(node.endpoint), settle=5.0)
        )
        assert execution.records[0].initiator == node

    def test_unknown_endpoint_rejected(self, sim_pair):
        simulation, _ = sim_pair
        item = OperationItem(
            kind="anycast", target=TargetSpec.range(0.5, 1.0),
            initiator="255.255.255.255:1",
        )
        with pytest.raises(ValueError, match="endpoint"):
            simulation.ops.run(OperationPlan.single(item))

    def test_mixed_poisson_plan_end_to_end(self, sim_pair):
        simulation, _ = sim_pair
        plan = OperationPlan(
            items=(
                OperationItem(
                    kind="anycast", target=TargetSpec.range(0.6, 0.9), count=5,
                    band="mid", timing=OperationTiming(mode="poisson", rate=0.2),
                ),
                OperationItem(
                    kind="multicast", target=TargetSpec.threshold(0.5), count=3,
                    band="high", timing=OperationTiming(mode="poisson", rate=0.1),
                ),
            ),
            settle=30.0,
            name="mixed",
        )
        log = simulation.ops.run(plan)
        assert len(log) == 8
        assert int(log.anycasts.sum()) == 5
        assert int(log.multicasts.sum()) == 3
        launched_at = log.launched_at[log.launched]
        assert (np.diff(launched_at) >= 0).all()  # interleaved by time
        fractions = log.status_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        for status in log.columns["status"]:
            # every launched row reached a terminal state post-settle
            from repro.ops.log import STATUSES

            assert STATUSES[status] != AnycastStatus.PENDING

    def test_workload_spec_compiles_to_mixed_plan(self):
        from repro.scenarios.spec import WorkloadSpec

        workload = WorkloadSpec(anycasts=4, multicasts=2, timing="poisson", rate=0.1)
        plan = workload.to_plan(name="spec")
        assert {item.kind for item in plan.items} == {"anycast", "multicast"}
        assert all(item.timing.mode == "poisson" for item in plan.items)
        assert plan.total_operations == 6
        # Interval mode keeps the historical sequential shape.
        sequential = WorkloadSpec(anycasts=4, multicasts=2).to_plan()
        phases = {item.kind: item.timing.phase for item in sequential.items}
        assert phases["anycast"] == 0.0
        assert phases["multicast"] == pytest.approx(4 * 2.0 + 30.0)
        # Empty workloads compile to no plan at all.
        assert WorkloadSpec(anycasts=0, multicasts=0).to_plan() is None

    def test_timing_modes_vocabulary(self):
        assert set(TIMING_MODES) == {"batch", "interval", "poisson"}

    def test_multicast_item_budgets_reach_stage1(self, sim_pair):
        simulation, _ = sim_pair
        # An initiator whose *believed* availability is outside a narrow
        # target: with ttl=0 the stage-1 anycast must expire immediately
        # instead of running on the default TTL budget.
        initiator = next(
            node
            for node in simulation.online_ids()
            if simulation.nodes[node].self_descriptor().availability < 0.97
        )
        item = OperationItem(
            kind="multicast",
            target=TargetSpec.range(0.98, 0.99),
            initiator=initiator,
            ttl=0,
            retry=1,
            timing=OperationTiming(mode="batch"),
        )
        execution = simulation.ops.execute(OperationPlan.single(item, settle=5.0))
        record = execution.records[0]
        assert record.anycast.status == AnycastStatus.TTL_EXPIRED
