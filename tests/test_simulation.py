"""Integration tests for the AvmemSimulation orchestrator."""

import numpy as np
import pytest

from repro.core.config import AvmemConfig
from repro.ops.results import AnycastStatus
from repro.ops.spec import TargetSpec
from repro.simulation import AvmemSimulation, SimulationSettings


class TestSettings:
    def test_defaults_are_paper_scale(self):
        settings = SimulationSettings()
        assert settings.hosts == 1442
        assert settings.epochs == 504
        assert settings.horizon == pytest.approx(7 * 86400.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationSettings(hosts=1)
        with pytest.raises(ValueError):
            SimulationSettings(predicate_kind="fancy")
        with pytest.raises(ValueError):
            SimulationSettings(bootstrap="magic")
        with pytest.raises(ValueError):
            SimulationSettings(coarse_view_kind="none")
        with pytest.raises(ValueError):
            SimulationSettings(protocols="sometimes")


class TestLifecycle:
    def test_setup_required_before_ops(self):
        simulation = AvmemSimulation(SimulationSettings(hosts=50, epochs=20))
        with pytest.raises(RuntimeError):
            simulation.run_anycast((0.8, 0.9))

    def test_double_setup_rejected(self):
        simulation = AvmemSimulation(SimulationSettings(hosts=50, epochs=20))
        simulation.setup(warmup=6000.0, settle=1200.0)
        with pytest.raises(RuntimeError):
            simulation.setup(warmup=6000.0)

    def test_warmup_must_fit_horizon(self):
        simulation = AvmemSimulation(SimulationSettings(hosts=50, epochs=20))
        with pytest.raises(ValueError):
            simulation.setup(warmup=1e9)

    def test_bad_settle_rejected(self):
        simulation = AvmemSimulation(SimulationSettings(hosts=50, epochs=20))
        with pytest.raises(ValueError):
            simulation.setup(warmup=6000.0, settle=7000.0)


class TestWarmedSystem:
    def test_population_online(self, small_simulation):
        online = small_simulation.online_ids()
        assert 20 <= len(online) <= 220

    def test_lists_populated(self, small_simulation):
        populated = [
            n for n in small_simulation.online_nodes() if n.lists.total_count > 0
        ]
        assert len(populated) >= 0.9 * len(small_simulation.online_ids())

    def test_caches_hold_neighbor_availabilities(self, small_simulation):
        node = small_simulation.online_nodes()[0]
        for entry in node.lists.all_entries():
            assert 0.0 <= entry.availability <= 1.0

    def test_true_availability_matches_trace(self, small_simulation):
        s = small_simulation
        node = s.online_ids()[0]
        assert s.true_availability(node) == pytest.approx(
            s.trace.availability(node, s.sim.now)
        )

    def test_pick_initiator_respects_band(self, small_simulation):
        s = small_simulation
        for band, (lo, hi) in (("low", (0.0, 1 / 3)), ("high", (2 / 3, 1.01))):
            initiator = s.pick_initiator(band)
            if initiator is not None:
                av = s.true_availability(initiator)
                assert lo <= av < hi

    def test_as_target_coercion(self):
        assert AvmemSimulation.as_target((0.2, 0.3)) == TargetSpec.range(0.2, 0.3)
        assert AvmemSimulation.as_target(0.9) == TargetSpec.threshold(0.9)
        spec = TargetSpec.range(0.1, 0.2)
        assert AvmemSimulation.as_target(spec) is spec


class TestOperations:
    def test_run_anycast_easy_target(self, small_simulation):
        record = small_simulation.run_anycast(
            (0.75, 1.0), initiator_band="mid", policy="retry-greedy"
        )
        assert record.status in AnycastStatus.TERMINAL
        assert record.delivered  # wide high target: deliverable

    def test_run_anycast_batch(self, small_simulation):
        records = small_simulation.run_anycast_batch(
            5, (0.7, 1.0), "mid", policy="greedy"
        )
        assert len(records) == 5
        assert all(r.status != AnycastStatus.PENDING for r in records)

    def test_run_multicast(self, small_simulation):
        record = small_simulation.run_multicast(
            (0.7, 1.0), initiator_band="high", mode="flood"
        )
        assert record.reliability() >= 0.5

    def test_run_multicast_batch(self, small_simulation):
        records = small_simulation.run_multicast_batch(3, 0.5, "high", mode="gossip")
        assert len(records) == 3

    def test_operations_advance_time(self, small_simulation):
        before = small_simulation.sim.now
        small_simulation.run_anycast((0.7, 1.0), initiator_band="mid")
        assert small_simulation.sim.now > before


class TestDirectVsProtocolBootstrap:
    """The consistency property: both bootstrap modes converge to overlays
    with statistically matching sliver sizes."""

    @pytest.mark.slow
    def test_modes_agree_on_sliver_scale(self):
        base = dict(hosts=150, epochs=48, seed=21)
        direct = AvmemSimulation(SimulationSettings(**base, bootstrap="direct"))
        direct.setup(warmup=12600.0, settle=2400.0)
        protocol = AvmemSimulation(SimulationSettings(**base, bootstrap="protocol"))
        protocol.setup(warmup=12600.0)
        def mean_degree(sim):
            nodes = sim.online_nodes()
            return np.mean([n.lists.total_count for n in nodes])
        d, p = mean_degree(direct), mean_degree(protocol)
        assert d == pytest.approx(p, rel=0.6)

    def test_random_predicate_kind(self):
        simulation = AvmemSimulation(
            SimulationSettings(hosts=80, epochs=30, seed=3, predicate_kind="random")
        )
        simulation.setup(warmup=9000.0, settle=1800.0)
        # Same threshold everywhere is the defining property.
        predicate = simulation.predicate
        assert predicate.threshold(0.1, 0.9) == predicate.threshold(0.5, 0.52)

    def test_shuffled_coarse_view_kind(self):
        simulation = AvmemSimulation(
            SimulationSettings(hosts=80, epochs=30, seed=3, coarse_view_kind="shuffled")
        )
        simulation.setup(warmup=9000.0, settle=1800.0)
        node = simulation.online_ids()[0]
        assert len(simulation.coarse_view.view(node)) > 0


class TestDeterminism:
    def test_same_seed_same_overlay(self):
        def build():
            simulation = AvmemSimulation(
                SimulationSettings(hosts=80, epochs=30, seed=77, protocols="off")
            )
            simulation.setup(warmup=9000.0, settle=0.0)
            return {
                node_id: sorted(str(n) for n in node.lists.neighbor_ids())
                for node_id, node in simulation.nodes.items()
            }
        assert build() == build()
