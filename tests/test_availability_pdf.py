"""Unit + property tests for the discretized availability PDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.availability import AvailabilityPdf


class TestConstruction:
    def test_from_samples_basic(self, rng):
        samples = rng.uniform(0, 1, 500)
        pdf = AvailabilityPdf.from_samples(samples)
        assert pdf.bins == 20
        assert pdf.n_star == pytest.approx(samples.sum())

    def test_online_weighting_default(self):
        # Two hosts: availability 0.1 and 0.9 -> N* = 1.0 online expected.
        pdf = AvailabilityPdf.from_samples([0.1, 0.9])
        assert pdf.n_star == pytest.approx(1.0)

    def test_unweighted_option(self):
        pdf = AvailabilityPdf.from_samples([0.1, 0.9], online_weighted=False)
        assert pdf.n_star == pytest.approx(2.0)
        assert pdf.fraction_in(0.0, 0.5) == pytest.approx(0.5)

    def test_online_weighting_shifts_mass_up(self):
        pdf = AvailabilityPdf.from_samples([0.1, 0.9])
        assert pdf.fraction_in(0.5, 1.0) == pytest.approx(0.9)

    def test_explicit_n_star(self):
        pdf = AvailabilityPdf.from_samples([0.5, 0.5], n_star=442.0)
        assert pdf.n_star == 442.0

    def test_uniform_factory(self):
        pdf = AvailabilityPdf.uniform(n_star=100.0)
        assert pdf.density(0.1) == pytest.approx(pdf.density(0.9))
        assert pdf.fraction_in(0.0, 1.0) == pytest.approx(1.0)

    def test_all_zero_availability_falls_back(self):
        pdf = AvailabilityPdf.from_samples([0.0, 0.0, 0.0])
        assert pdf.fraction_in(0.0, 0.1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityPdf.from_samples([])
        with pytest.raises(ValueError):
            AvailabilityPdf.from_samples([1.5])
        with pytest.raises(ValueError):
            AvailabilityPdf.from_samples([0.5], bins=0)
        with pytest.raises(ValueError):
            AvailabilityPdf([-1.0, 2.0], n_star=10)
        with pytest.raises(ValueError):
            AvailabilityPdf([0.0, 0.0], n_star=10)


class TestDensityAndMass:
    def test_density_integrates_to_one(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.beta(2, 5, 1000))
        grid = np.linspace(0.001, 0.999, 5000)
        integral = np.trapezoid(np.asarray(pdf.density(grid)), grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_fraction_in_full_interval(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.uniform(0, 1, 200))
        assert pdf.fraction_in(0.0, 1.0) == pytest.approx(1.0)

    def test_fraction_in_clamps_bounds(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.uniform(0, 1, 200))
        assert pdf.fraction_in(-0.5, 1.5) == pytest.approx(1.0)

    def test_fraction_in_empty_interval(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.uniform(0, 1, 200))
        assert pdf.fraction_in(0.5, 0.5) == 0.0
        assert pdf.fraction_in(0.7, 0.3) == 0.0

    def test_fraction_in_additive(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.uniform(0, 1, 200))
        total = pdf.fraction_in(0.2, 0.8)
        split = pdf.fraction_in(0.2, 0.5) + pdf.fraction_in(0.5, 0.8)
        assert total == pytest.approx(split)

    def test_sub_bin_interpolation(self):
        pdf = AvailabilityPdf.uniform(n_star=10.0, bins=10)
        assert pdf.fraction_in(0.0, 0.05) == pytest.approx(0.05)

    def test_density_vectorized_matches_scalar(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.beta(2, 2, 300))
        grid = np.linspace(0.01, 0.99, 37)
        vector = np.asarray(pdf.density(grid))
        scalar = np.array([pdf.density(float(a)) for a in grid])
        assert np.allclose(vector, scalar)


class TestPaperQuantities:
    def test_expected_online_in(self):
        pdf = AvailabilityPdf.uniform(n_star=100.0)
        assert pdf.expected_online_in(0.0, 0.5) == pytest.approx(50.0)

    def test_n_star_av_uniform(self):
        pdf = AvailabilityPdf.uniform(n_star=100.0)
        assert pdf.n_star_av(0.5, 0.1) == pytest.approx(20.0)

    def test_n_star_av_at_boundary(self):
        pdf = AvailabilityPdf.uniform(n_star=100.0)
        # Band [0.9, 1.1] clamps to [0.9, 1.0].
        assert pdf.n_star_av(1.0, 0.1) == pytest.approx(10.0)

    def test_n_star_min_le_n_star_av(self, rng):
        pdf = AvailabilityPdf.from_samples(rng.beta(2, 5, 1000))
        for a in (0.05, 0.3, 0.5, 0.7, 0.95):
            assert pdf.n_star_min_av(a, 0.1) <= pdf.n_star_av(a, 0.1) + 1e-9

    def test_n_star_min_uniform(self):
        pdf = AvailabilityPdf.uniform(n_star=100.0)
        # Any width-0.1 window holds 10 expected nodes.
        assert pdf.n_star_min_av(0.5, 0.1) == pytest.approx(10.0)

    def test_n_star_min_positive_at_boundaries(self, rng):
        """The boundary clamp: windows never hang outside [0, 1]."""
        pdf = AvailabilityPdf.from_samples(rng.beta(2, 2, 1000))
        assert pdf.n_star_min_av(0.98, 0.1) > 0.0
        assert pdf.n_star_min_av(0.02, 0.1) > 0.0

    def test_epsilon_validation(self):
        pdf = AvailabilityPdf.uniform(n_star=10.0)
        with pytest.raises(ValueError):
            pdf.n_star_av(0.5, 0.0)


@given(
    data=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=80),
    lo=st.floats(0.0, 1.0),
    hi=st.floats(0.0, 1.0),
)
@settings(max_examples=80, deadline=None)
def test_fraction_in_properties(data, lo, hi):
    """fraction_in is a sub-probability measure (hypothesis)."""
    pdf = AvailabilityPdf.from_samples(data, online_weighted=False)
    mass = pdf.fraction_in(min(lo, hi), max(lo, hi))
    assert -1e-9 <= mass <= 1.0 + 1e-9
    assert pdf.fraction_in(0.0, 1.0) == pytest.approx(1.0)
