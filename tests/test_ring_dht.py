"""Unit tests for the availability-keyed ring DHT baseline."""

import numpy as np
import pytest

from repro.core.ids import make_node_ids
from repro.overlays.ring_dht import AvailabilityRing


@pytest.fixture
def ring():
    ring = AvailabilityRing()
    ids = make_node_ids(10)
    for i, node in enumerate(ids):
        ring.join(node, (i + 0.5) / 10.0)  # keys 0.05, 0.15, ..., 0.95
    return ring, ids


class TestMembership:
    def test_join_and_position(self, ring):
        dht, ids = ring
        assert len(dht) == 10
        assert dht.position(ids[3]) == pytest.approx(0.35)
        assert ids[3] in dht

    def test_double_join_rejected(self, ring):
        dht, ids = ring
        with pytest.raises(ValueError):
            dht.join(ids[0], 0.5)

    def test_leave(self, ring):
        dht, ids = ring
        dht.leave(ids[0])
        assert len(dht) == 9
        assert ids[0] not in dht
        with pytest.raises(KeyError):
            dht.leave(ids[0])

    def test_members_sorted_by_key(self, ring):
        dht, ids = ring
        keys = [dht.position(n) for n in dht.members()]
        assert keys == sorted(keys)

    def test_invalid_key_rejected(self):
        dht = AvailabilityRing()
        with pytest.raises(ValueError):
            dht.join(make_node_ids(1)[0], 1.5)


class TestRekeying:
    def test_small_drift_does_not_rekey(self, ring):
        dht, ids = ring
        assert not dht.update_key(ids[0], 0.055)
        assert dht.rekey_events == 0
        assert dht.position(ids[0]) == pytest.approx(0.05)  # unchanged

    def test_large_drift_rekeys(self, ring):
        dht, ids = ring
        assert dht.update_key(ids[0], 0.72)
        assert dht.rekey_events == 1
        assert dht.position(ids[0]) == pytest.approx(0.72)
        keys = [dht.position(n) for n in dht.members()]
        assert keys == sorted(keys)  # ring order restored

    def test_update_unknown_raises(self, ring):
        dht, _ = ring
        with pytest.raises(KeyError):
            dht.update_key(make_node_ids(20)[19], 0.5)


class TestRouting:
    def test_successor_ownership(self, ring):
        dht, ids = ring
        # Key 0.30 is owned by the node at 0.35.
        assert dht.members()[dht.successor_index(0.30)] == ids[3]
        # Key past the last node wraps to the first.
        assert dht.members()[dht.successor_index(0.99)] == ids[0]

    def test_lookup_reaches_owner(self, ring):
        dht, ids = ring
        result = dht.lookup(ids[0], 0.62)
        assert result.node == ids[6]
        assert result.hops >= 1

    def test_lookup_hops_logarithmic(self):
        dht = AvailabilityRing()
        ids = make_node_ids(256)
        rng = np.random.default_rng(5)
        for node in ids:
            dht.join(node, float(rng.uniform(0, 1)))
        hops = [dht.lookup(ids[0], float(k)).hops for k in rng.uniform(0, 1, 50)]
        assert max(hops) <= 9  # ~log2(256) + slack

    def test_lookup_self_owned_zero_hops(self, ring):
        dht, ids = ring
        result = dht.lookup(ids[3], 0.33)
        assert result.node == ids[3]
        assert result.hops == 0

    def test_empty_ring_lookup_raises(self):
        dht = AvailabilityRing()
        ids = make_node_ids(1)
        with pytest.raises(KeyError):
            dht.lookup(ids[0], 0.5)


class TestRangeWalk:
    def test_covers_exactly_the_range(self, ring):
        dht, ids = ring
        reached, hops = dht.range_walk(ids[0], 0.30, 0.60)
        assert set(reached) == {ids[3], ids[4], ids[5]}

    def test_linear_cost_in_members(self):
        dht = AvailabilityRing()
        ids = make_node_ids(200)
        rng = np.random.default_rng(6)
        for node in ids:
            dht.join(node, float(rng.uniform(0, 1)))
        reached, hops = dht.range_walk(ids[0], 0.2, 0.8)
        # Successor walking costs at least one hop per covered member —
        # the linearity the paper objects to.
        assert hops >= len(reached)
        assert len(reached) > 50

    def test_empty_range(self, ring):
        dht, ids = ring
        reached, _ = dht.range_walk(ids[0], 0.06, 0.09)
        assert reached == []
